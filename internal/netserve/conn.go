package netserve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/hix"
	"repro/internal/hixrt"
	"repro/internal/wire"
)

// errDrained reports an idle wait ended by graceful shutdown.
var errDrained = errors.New("netserve: draining")

// errAborted reports a v2 read loop cut short by its executor hitting
// a terminal error.
var errAborted = errors.New("netserve: connection aborted")

// outFrame is one queued frame on a connection's send path. When buf
// is non-nil the body aliases pooled storage owned by this frame; the
// writer releases it once the frame is written (or dropped).
type outFrame struct {
	op     wire.Opcode
	tag    uint32
	tagged bool
	body   []byte
	buf    *wire.Buf
}

func (f *outFrame) release() {
	if f.buf != nil {
		f.buf.Release()
		f.buf = nil
	}
}

// conn bridges one TCP connection onto one in-process HIX session. The
// handler goroutine owns the read side and the session; a dedicated
// writer goroutine drains the send queue so a slow peer backpressures
// only its own connection.
//
// Shutdown interruption is precise: while the handler idles between
// requests it waits for the next frame header with a non-destructive
// Peek, which Shutdown may cut short at any time (no bytes are lost).
// Once a frame has started arriving the connection is "busy" —
// interruptRead leaves busy reads alone, so a request already in
// flight always completes and flushes its response before Goodbye.
type conn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader
	fr  *wire.FrameReader // pooled destructive reads (v2 path)

	sess    *hixrt.Session
	version uint16

	// readMu orders deadline writes between the handler and
	// interruptRead; busy marks a destructive read in progress that
	// drain must not cut short. lastArm is when the read deadline was
	// last pushed out — deadline writes are syscalls, so they are
	// re-armed at most once per quarter of ReadTimeout (a stall is then
	// detected after 0.75x–1x the configured timeout).
	readMu  sync.Mutex
	busy    bool
	lastArm time.Time

	sendQ      chan outFrame
	writerDone chan struct{}
	wfailed    atomic.Bool
	// aborted marks a v2 connection whose executor hit a terminal
	// error; the read loop must stop instead of feeding it more work.
	aborted atomic.Bool
}

func newConn(s *Server, nc net.Conn) *conn {
	br := bufio.NewReaderSize(nc, 64<<10)
	return &conn{
		srv:        s,
		nc:         nc,
		br:         br,
		fr:         wire.NewFrameReader(br),
		sendQ:      make(chan outFrame, s.cfg.SendQueue),
		writerDone: make(chan struct{}),
	}
}

// interruptRead wakes the handler out of an idle wait so a draining
// server doesn't sit out the idle timeout. A busy connection (request
// frame mid-read) is left alone; its handler observes the drain flag
// after the in-flight request completes.
func (c *conn) interruptRead() {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	if !c.busy {
		_ = c.nc.SetReadDeadline(time.Now())
	}
}

func (c *conn) setBusy(b bool) {
	c.readMu.Lock()
	c.busy = b
	c.readMu.Unlock()
}

// waitFrame blocks until a full frame header is buffered (consuming
// nothing), the idle deadline passes, or the server drains. During a
// drain a partially arrived frame gets one idle-timeout grace period to
// finish instead of being cut mid-frame.
func (c *conn) waitFrame() error {
	grace := false
	for {
		c.readMu.Lock()
		if c.aborted.Load() {
			c.readMu.Unlock()
			return errAborted
		}
		c.busy = false
		now := time.Now()
		switch {
		case c.srv.isDraining() && !grace && c.br.Buffered() == 0:
			_ = c.nc.SetReadDeadline(now)
			c.lastArm = time.Time{}
		case c.srv.isDraining():
			// Grace period for a partially arrived frame: always a
			// fresh, full timeout.
			_ = c.nc.SetReadDeadline(now.Add(c.srv.cfg.ReadTimeout))
			c.lastArm = now
		case now.Sub(c.lastArm) > c.srv.cfg.ReadTimeout/4:
			_ = c.nc.SetReadDeadline(now.Add(c.srv.cfg.ReadTimeout))
			c.lastArm = now
		}
		c.readMu.Unlock()
		_, err := c.br.Peek(wire.HeaderSize)
		if err == nil {
			return nil
		}
		if errors.Is(err, os.ErrDeadlineExceeded) && c.srv.isDraining() {
			if c.br.Buffered() == 0 {
				return errDrained
			}
			if !grace {
				grace = true
				continue
			}
			// The grace period expired with the frame still partial:
			// this is a drain abort, not an idle timeout — surface it
			// as errDrained so the client gets a clean Goodbye instead
			// of an "idle timeout" protocol error.
			return errDrained
		}
		return err
	}
}

// armRead pushes the read deadline out under the coarse re-arm policy.
// An aborted connection keeps its cut deadline so in-progress reads
// fail fast instead of waiting out a fresh timeout.
func (c *conn) armRead() {
	now := time.Now()
	c.readMu.Lock()
	if !c.aborted.Load() && now.Sub(c.lastArm) > c.srv.cfg.ReadTimeout/4 {
		_ = c.nc.SetReadDeadline(now.Add(c.srv.cfg.ReadTimeout))
		c.lastArm = now
	}
	c.readMu.Unlock()
}

// readFrame destructively reads one frame under a fresh deadline. Only
// call with the connection busy (or during the handshake, before
// Shutdown tracks the conn as idle).
func (c *conn) readFrame() (wire.Opcode, []byte, error) {
	c.armRead()
	return wire.ReadFrame(c.br)
}

// readFrameP is readFrame on the pooled path (v2): the body comes from
// the frame pool and the caller must Release it exactly once.
func (c *conn) readFrameP() (wire.Opcode, *wire.Buf, error) {
	c.armRead()
	return c.fr.Next()
}

// send queues one frame for the writer; it reports false once the write
// side has failed, so handlers stop producing into a dead connection.
func (c *conn) send(op wire.Opcode, body []byte) bool {
	return c.enqueue(outFrame{op: op, body: body})
}

// sendT queues one tagged (v2) frame. buf, when non-nil, is the pooled
// storage body aliases; the writer releases it after the write — on a
// false return the frame was dropped and buf has already been
// released.
func (c *conn) sendT(op wire.Opcode, tag uint32, body []byte, buf *wire.Buf) bool {
	return c.enqueue(outFrame{op: op, tag: tag, tagged: true, body: body, buf: buf})
}

func (c *conn) enqueue(f outFrame) bool {
	if c.wfailed.Load() {
		f.release()
		return false
	}
	// Injected overflow targets Data frames only: those are the bulk
	// DtoH stream, and keeping the site request-driven (one decision
	// per queued chunk on the serial handler) keeps the fault schedule
	// deterministic.
	if (f.op == wire.OpData || f.op == wire.OpTData) && c.srv.cfg.Faults.Fire(faults.NetSendQueue) {
		c.wfailed.Store(true)
		c.srv.logf("netserve: injected send-queue overflow")
		f.release()
		return false
	}
	c.sendQ <- f
	return true
}

// writer drains the send queue onto the socket through a vectored
// FrameWriter, flushing whenever the queue runs empty. After a write
// failure it keeps consuming (so the handler never blocks on a dead
// peer) until the queue closes; pooled bodies are released either way.
func (c *conn) writer() {
	defer close(c.writerDone)
	defer func() {
		if r := recover(); r != nil {
			c.wfailed.Store(true)
			c.srv.logf("netserve: writer panic: %v", r)
		}
	}()
	fw := wire.NewFrameWriter(c.nc, 64<<10)
	var lastArm time.Time
	for f := range c.sendQ {
		if c.wfailed.Load() {
			f.release()
			continue
		}
		// Coarse re-arm: one write-deadline syscall per quarter-timeout,
		// not per frame (a stalled peer is detected after 0.75x–1x
		// WriteTimeout).
		if now := time.Now(); now.Sub(lastArm) > c.srv.cfg.WriteTimeout/4 {
			_ = c.nc.SetWriteDeadline(now.Add(c.srv.cfg.WriteTimeout))
			lastArm = now
		}
		var err error
		if f.tagged {
			err = fw.WriteTagged(f.op, f.tag, f.body)
		} else {
			err = fw.WriteFrame(f.op, f.body)
		}
		f.release()
		if err != nil {
			c.wfailed.Store(true)
			c.srv.logf("netserve: write: %v", err)
			continue
		}
		if len(c.sendQ) == 0 {
			if err := fw.Flush(); err != nil {
				c.wfailed.Store(true)
				c.srv.logf("netserve: flush: %v", err)
			}
		}
	}
	if !c.wfailed.Load() {
		_ = c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
		_ = fw.Flush()
	}
}

// sendNow writes one frame directly (handshake replies, before the
// writer goroutine exists).
func (c *conn) sendNow(op wire.Opcode, body []byte) {
	_ = c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
	_ = wire.WriteFrame(c.nc, op, body)
}

// run serves the connection to completion: handshake, request loop,
// drained teardown. The teardown order matters: stop reading, flush
// every queued frame, close the socket, close the session.
func (c *conn) run() {
	defer c.nc.Close()
	// A panic anywhere in this connection's handling (a hostile
	// request tripping a bug, instrumentation hooks, injected faults)
	// must cost only this connection, never the server: the recover
	// runs after the deferred session teardown and writer drain, so
	// even a panicking handler leaves no leaked session behind.
	defer func() {
		if r := recover(); r != nil {
			c.srv.logf("netserve: connection handler panic: %v", r)
		}
	}()
	if !c.handshake() {
		return
	}
	defer c.srv.closeSession(c.sess)
	go c.writer()
	defer func() {
		close(c.sendQ)
		<-c.writerDone
	}()
	if c.version >= wire.Version2 {
		c.loopV2()
	} else {
		c.loop()
	}
}

// handshake reads the Hello, negotiates a version, opens the bridged
// session, and answers Welcome. Failures answer a typed Error frame
// directly. Reports whether the connection reached serving state.
func (c *conn) handshake() bool {
	if err := c.waitFrame(); err != nil {
		if err == errDrained {
			c.sendNow(wire.OpGoodbye, nil)
		} else if err != io.EOF {
			c.sendNow(wire.OpError, wire.EncodeError(wire.ECodeProto, err.Error()))
		}
		return false
	}
	c.setBusy(true)
	op, body, err := c.readFrame()
	if err != nil {
		c.sendNow(wire.OpError, wire.EncodeError(wire.ECodeProto, err.Error()))
		return false
	}
	if op != wire.OpHello {
		c.sendNow(wire.OpError, wire.EncodeError(wire.ECodeProto,
			fmt.Sprintf("expected hello, got %v", op)))
		return false
	}
	h, err := wire.DecodeHello(body)
	if err != nil {
		code := wire.ECodeProto
		if errors.Is(err, wire.ErrVersion) {
			code = wire.ECodeVersion
		}
		c.sendNow(wire.OpError, wire.EncodeError(code, err.Error()))
		return false
	}
	ver, err := wire.NegotiateCapped(h.MinVersion, h.MaxVersion, c.srv.cfg.MaxWireVersion)
	if err != nil {
		c.sendNow(wire.OpError, wire.EncodeError(wire.ECodeVersion, err.Error()))
		return false
	}
	if c.srv.isDraining() {
		c.sendNow(wire.OpGoodbye, nil)
		return false
	}
	if !c.srv.authAllow() {
		c.sendNow(wire.OpError, wire.EncodeError(wire.ECodeAuth,
			"authentication circuit breaker open"))
		return false
	}
	// Resumption fast path: a v3 Hello carrying a ticket skips the
	// attested key exchange entirely if the ticket validates. Any
	// refusal is logged by class and falls back — transparently — to
	// the full handshake the client was prepared to pay anyway.
	var sess *hixrt.Session
	resumed := false
	if ver >= wire.Version3 && len(h.Ticket) > 0 {
		st, terr := c.srv.tickets.Open(h.Ticket, h.Measurement)
		if terr == nil {
			sess, terr = c.srv.openSessionResumed(st, c.nc.RemoteAddr().String())
			if terr == nil {
				resumed = true
			}
		}
		if terr != nil {
			c.srv.tickets.fallbacks.Add(1)
			c.srv.logf("netserve: ticket refused, full handshake: %v", terr)
		}
	}
	if sess == nil {
		var err error
		sess, err = c.srv.openSession(h.Measurement, c.nc.RemoteAddr().String())
		if err != nil {
			code := wire.ECodeServer
			if errors.Is(err, hixrt.ErrAttestation) || errors.Is(err, hixrt.ErrAuth) {
				code = wire.ECodeAuth
				c.srv.authResult(false)
			}
			c.sendNow(wire.OpError, wire.EncodeError(code, err.Error()))
			return false
		}
	}
	c.srv.authResult(true)
	c.sess = sess
	c.version = ver
	w := wire.Welcome{
		Version:     ver,
		SessionID:   sess.ID(),
		SegmentSize: sess.Segment().Size,
		ChunkSize:   uint32(c.srv.m.Cost.CryptoChunk),
		MaxData:     uint32(c.srv.cfg.MaxData),
		Enclave:     c.srv.ge.Measurement(),
	}
	if ver >= wire.Version2 {
		w.MaxInFlight = uint16(c.srv.cfg.MaxInFlight)
	}
	if ver >= wire.Version3 {
		// Tickets are single-use, so every v3 handshake — full or
		// resumed — hands out the next one.
		w.Resumed = resumed
		if tkt, err := c.srv.mintTicket(sess, h.Measurement); err != nil {
			c.srv.logf("netserve: ticket mint: %v", err)
		} else {
			w.Ticket = tkt
		}
	}
	c.sendNow(wire.OpWelcome, w.Encode())
	return true
}

// loop is the serving state: one request at a time, in order, until the
// client closes, an error breaks the connection, or the server drains.
func (c *conn) loop() {
	for {
		if c.wfailed.Load() {
			return
		}
		if err := c.waitFrame(); err != nil {
			switch {
			case err == errDrained:
				c.send(wire.OpGoodbye, nil)
			case err == io.EOF:
				// Peer hung up without ReqClose; session teardown in run.
			case errors.Is(err, os.ErrDeadlineExceeded):
				c.send(wire.OpError, wire.EncodeError(wire.ECodeProto, "idle timeout"))
			case errors.Is(err, io.ErrUnexpectedEOF):
				c.srv.logf("netserve: %v", err)
			default:
				c.send(wire.OpError, wire.EncodeError(wire.ECodeProto, err.Error()))
			}
			return
		}
		// A drop fires as the request arrives: abrupt close, no
		// Goodbye — the client sees the transport die mid-exchange.
		if c.srv.cfg.Faults.Fire(faults.NetDrop) {
			c.srv.logf("netserve: injected connection drop")
			return
		}
		c.setBusy(true)
		op, body, err := c.readFrame()
		if err != nil {
			if !errors.Is(err, wire.ErrShortFrame) {
				c.send(wire.OpError, wire.EncodeError(wire.ECodeProto, err.Error()))
			}
			c.srv.logf("netserve: %v", err)
			return
		}
		if op != wire.OpRequest {
			c.send(wire.OpError, wire.EncodeError(wire.ECodeProto,
				fmt.Sprintf("expected request, got %v", op)))
			return
		}
		start := time.Now()
		done, err := c.handleRequest(body)
		c.srv.observeServe(time.Since(start))
		c.setBusy(false)
		if err != nil {
			c.srv.logf("netserve: request: %v", err)
			return
		}
		if done {
			return
		}
	}
}

// tReq is one tagged request handed from the v2 read loop to the
// executor. payload (non-nil for HtoD) is pooled and owned by the
// receiver: the executor releases it after bridging the transfer.
type tReq struct {
	tag     uint32
	req     hix.Request
	payload *wire.Buf
}

func (r *tReq) release() {
	if r.payload != nil {
		r.payload.Release()
		r.payload = nil
	}
}

// loopV2 is the pipelined serving state: a read loop dispatches tagged
// requests onto a serial executor through a bounded queue, so up to
// MaxInFlight requests overlap their wire transfer and queueing with
// execution while the session still observes exactly the submission
// order — the lock-step op sequence, hence byte-identical ciphertext.
func (c *conn) loopV2() {
	execQ := make(chan *tReq, c.srv.cfg.MaxInFlight)
	execDone := make(chan struct{})
	go c.executeV2(execQ, execDone)
	sayGoodbye := c.readLoopV2(execQ)
	// Drain order: stop reading, let the executor finish (and flush
	// replies for) everything already queued, then say Goodbye.
	close(execQ)
	<-execDone
	if sayGoodbye && !c.aborted.Load() {
		c.send(wire.OpGoodbye, nil)
	}
}

// readLoopV2 reads tagged requests (each with its contiguous payload
// frames) and queues them for execution. It reports whether the
// connection should end with a Goodbye (graceful drain); a client
// close ends the loop too, but its Goodbye is the executor's to send
// after the close reply.
func (c *conn) readLoopV2(execQ chan<- *tReq) (sayGoodbye bool) {
	for {
		if c.wfailed.Load() || c.aborted.Load() {
			return false
		}
		if err := c.waitFrame(); err != nil {
			switch {
			case err == errDrained:
				return true
			case err == errAborted, err == io.EOF:
			case errors.Is(err, os.ErrDeadlineExceeded):
				if c.aborted.Load() {
					return false
				}
				c.send(wire.OpError, wire.EncodeError(wire.ECodeProto, "idle timeout"))
			case errors.Is(err, io.ErrUnexpectedEOF):
				c.srv.logf("netserve: %v", err)
			default:
				c.send(wire.OpError, wire.EncodeError(wire.ECodeProto, err.Error()))
			}
			return false
		}
		// Same injection point as the v1 loop: the drop fires as a
		// request arrives — abrupt close, no Goodbye.
		if c.srv.cfg.Faults.Fire(faults.NetDrop) {
			c.srv.logf("netserve: injected connection drop")
			return false
		}
		c.setBusy(true)
		r, err := c.readRequestV2()
		c.setBusy(false)
		if err != nil {
			if c.aborted.Load() {
				return false
			}
			c.srv.logf("netserve: %v", err)
			return false
		}
		isClose := r.req.Type == hix.ReqClose
		execQ <- r
		if isClose {
			// The client promises no frames after its close request;
			// stop reading so the executor's Goodbye is the last word.
			return false
		}
	}
}

// readRequestV2 reads one tagged request frame plus, for HtoD, its
// contiguous same-tag Data frames into a pooled transfer buffer. Any
// protocol violation queues an Error frame (where one applies) and is
// terminal.
func (c *conn) readRequestV2() (*tReq, error) {
	op, buf, err := c.readFrameP()
	if err != nil {
		if !errors.Is(err, wire.ErrShortFrame) && err != io.EOF {
			c.send(wire.OpError, wire.EncodeError(wire.ECodeProto, err.Error()))
		}
		return nil, err
	}
	defer buf.Release()
	if op != wire.OpTRequest {
		c.send(wire.OpError, wire.EncodeError(wire.ECodeProto,
			fmt.Sprintf("expected tagged request, got %v", op)))
		return nil, fmt.Errorf("expected tagged request, got %v", op)
	}
	var body []byte
	if buf != nil {
		body = buf.Bytes()
	}
	tag, reqBody, err := wire.SplitTag(body)
	if err != nil {
		c.send(wire.OpError, wire.EncodeError(wire.ECodeProto, err.Error()))
		return nil, err
	}
	req, err := hix.DecodeRequest(reqBody)
	if err != nil {
		c.send(wire.OpError, wire.EncodeError(wire.ECodeProto, err.Error()))
		return nil, err
	}
	r := &tReq{tag: tag, req: req}
	if req.Type != hix.ReqMemcpyHtoD || req.Flags&gpu.FlagSynthetic != 0 {
		// Synthetic-flagged requests are rejected by the executor
		// before any payload is consumed, as in v1.
		return r, nil
	}
	if req.Len == 0 || req.Len > c.srv.cfg.MaxTransfer {
		// Reject before consuming payload; the stream is desynced, so
		// this is terminal (mirrors the v1 handler). Error frames are
		// untagged: they condemn the connection, not one request.
		c.send(wire.OpError, wire.EncodeError(wire.ECodeRequest,
			fmt.Sprintf("HtoD length %d out of range (max %d)", req.Len, c.srv.cfg.MaxTransfer)))
		return nil, fmt.Errorf("HtoD length %d out of range", req.Len)
	}
	xfer := wire.GetBuf(int(req.Len))
	dst := xfer.Bytes()
	got := 0
	for got < len(dst) {
		op, cb, err := c.readFrameP()
		if err != nil {
			xfer.Release()
			return nil, fmt.Errorf("HtoD payload: %w", err)
		}
		var cbody []byte
		if cb != nil {
			cbody = cb.Bytes()
		}
		if op != wire.OpTData {
			cb.Release()
			xfer.Release()
			c.send(wire.OpError, wire.EncodeError(wire.ECodeProto,
				fmt.Sprintf("expected tagged data, got %v", op)))
			return nil, fmt.Errorf("HtoD payload: unexpected %v", op)
		}
		ctag, chunk, terr := wire.SplitTag(cbody)
		if terr != nil {
			cb.Release()
			xfer.Release()
			c.send(wire.OpError, wire.EncodeError(wire.ECodeProto, terr.Error()))
			return nil, terr
		}
		if ctag != tag {
			cb.Release()
			xfer.Release()
			c.send(wire.OpError, wire.EncodeError(wire.ECodeProto,
				fmt.Sprintf("HtoD payload tag %#x, want %#x", ctag, tag)))
			return nil, fmt.Errorf("HtoD payload tag mismatch")
		}
		// Exact framing, as in v1: each chunk carries exactly
		// min(MaxData, remaining) bytes or the stream has desynced.
		want := min(c.srv.cfg.MaxData, len(dst)-got)
		if len(chunk) != want {
			cb.Release()
			xfer.Release()
			c.send(wire.OpError, wire.EncodeError(wire.ECodeProto,
				fmt.Sprintf("HtoD payload desync: %d-byte frame at offset %d, want exactly %d",
					len(chunk), got, want)))
			return nil, fmt.Errorf("HtoD payload desync (%d at %d, want %d)", len(chunk), got, want)
		}
		copy(dst[got:], chunk)
		got += len(chunk)
		cb.Release()
	}
	r.payload = xfer
	return r, nil
}

// executeV2 runs queued requests serially — the determinism and
// identity contract — and routes tagged replies through the send
// queue. A terminal error aborts the read loop and drains the rest of
// the queue without executing it.
func (c *conn) executeV2(execQ <-chan *tReq, done chan<- struct{}) {
	defer close(done)
	// cur pins the request being executed so a panic names its tag and
	// peer — without them a multi-connection server's panic log is
	// unattributable.
	var cur *tReq
	defer func() {
		if r := recover(); r != nil {
			if cur != nil {
				c.srv.logf("netserve: executor panic: %v (request tag %#x, remote %s)",
					r, cur.tag, c.nc.RemoteAddr())
			} else {
				c.srv.logf("netserve: executor panic: %v (remote %s)", r, c.nc.RemoteAddr())
			}
			c.abortV2()
		}
	}()
	failed := false
	var carried *tReq // non-batchable request pulled off the queue by gatherWindow
	for {
		var r *tReq
		if carried != nil {
			r, carried = carried, nil
		} else {
			var ok bool
			if r, ok = <-execQ; !ok {
				break
			}
		}
		if failed || c.wfailed.Load() {
			r.release()
			continue
		}
		if c.batchable(r) {
			var win []*tReq
			win, carried = c.gatherWindow(r, execQ)
			cur = win[0]
			start := time.Now()
			err := c.handleLaunchWindow(win)
			c.srv.observeServe(time.Since(start))
			cur = nil
			for _, wr := range win {
				wr.release()
			}
			if err != nil {
				c.srv.logf("netserve: request: %v", err)
				c.abortV2()
				failed = true
			}
			continue
		}
		cur = r
		start := time.Now()
		connDone, err := c.handleRequestV2(r)
		c.srv.observeServe(time.Since(start))
		cur = nil
		r.release()
		if err != nil {
			c.srv.logf("netserve: request: %v", err)
			c.abortV2()
			failed = true
		}
		if connDone {
			failed = true // drop anything queued behind the close
		}
	}
	if carried != nil {
		carried.release()
	}
}

// batchable reports whether r can ride a windowed launch epoch: the
// session is gated (scheduler mode) and the request is a plain,
// non-synthetic kernel launch. Everything else keeps the one-request
// serve path.
func (c *conn) batchable(r *tReq) bool {
	return c.sess.Gate != nil &&
		r.req.Type == hix.ReqLaunch &&
		r.req.Flags&gpu.FlagSynthetic == 0
}

// windowYields bounds how long gatherWindow waits for a pipelining
// peer's burst to finish landing on the execute queue. Like the
// scheduler's admission window, each yield lets the reader goroutine
// drain frames already in the socket buffer; a sequential client's
// queue stays empty so the window closes immediately.
const windowYields = 4

// gatherWindow greedily drains launch requests already queued behind
// first into one windowed epoch, up to the connection's in-flight
// limit. It returns the window plus the first non-batchable request it
// pulled off the queue (the caller executes that one after the
// window), if any.
func (c *conn) gatherWindow(first *tReq, execQ <-chan *tReq) ([]*tReq, *tReq) {
	win := []*tReq{first}
	maxW := c.srv.cfg.MaxInFlight
	yields := 0
	for len(win) < maxW {
		select {
		case r, ok := <-execQ:
			if !ok {
				return win, nil
			}
			if !c.batchable(r) {
				return win, r
			}
			win = append(win, r)
			continue
		default:
		}
		if yields == windowYields {
			break
		}
		yields++
		runtime.Gosched()
	}
	return win, nil
}

// handleLaunchWindow bridges a gathered window of launches onto the
// session as one serving epoch and routes the per-launch replies in
// tag order. Injected device faults keep their per-launch semantics:
// a fault on the k-th launch serves the first k as a (shorter) window
// and then fails the connection exactly like the single-request path.
func (c *conn) handleLaunchWindow(win []*tReq) error {
	specs := make([]hixrt.LaunchSpec, 0, len(win))
	faultAt := -1
	for i, r := range win {
		if c.srv.cfg.Faults.Fire(faults.GPUDeviceFault) {
			faultAt = i
			break
		}
		specs = append(specs, hixrt.LaunchSpec{Kernel: r.req.Kernel, Params: r.req.Params})
	}
	if len(specs) > 0 {
		errs, terminal := c.sess.LaunchWindow(specs)
		for i := range specs {
			if rerr := c.replyErrT(win[i].tag, errs[i], 0); rerr != nil {
				return rerr
			}
		}
		if terminal != nil {
			return terminal
		}
	}
	if faultAt >= 0 {
		c.send(wire.OpError, wire.EncodeError(wire.ECodeServer, "injected device fault"))
		return errors.New("injected device fault")
	}
	return nil
}

// abortV2 stops the v2 read loop after a terminal executor error: the
// flag makes the loop exit and the deadline write unblocks a read
// already in progress.
func (c *conn) abortV2() {
	c.readMu.Lock()
	c.aborted.Store(true)
	_ = c.nc.SetReadDeadline(time.Now())
	c.readMu.Unlock()
}

// handleRequestV2 bridges one tagged request onto the session; the
// payload for HtoD was already assembled by the read loop. Reports
// done=true after a client close (Goodbye has been queued).
func (c *conn) handleRequestV2(r *tReq) (done bool, err error) {
	req := r.req
	if req.Flags&gpu.FlagSynthetic != 0 {
		return false, c.replyT(r.tag, hix.Response{Status: hix.RespBadRequest})
	}
	switch req.Type {
	case hix.ReqMemAlloc:
		ptr, err := c.sess.MemAlloc(req.Size)
		return false, c.replyErrT(r.tag, err, uint64(ptr))
	case hix.ReqManagedAlloc:
		ptr, err := c.sess.ManagedAlloc(req.Size)
		return false, c.replyErrT(r.tag, err, uint64(ptr))
	case hix.ReqMemFree, hix.ReqManagedFree:
		return false, c.replyErrT(r.tag, c.sess.MemFree(hixrt.Ptr(req.Ptr)), 0)
	case hix.ReqMemcpyHtoD:
		return false, c.replyErrT(r.tag, c.sess.MemcpyHtoD(hixrt.Ptr(req.Ptr), r.payload.Bytes(), int(req.Len)), 0)
	case hix.ReqMemcpyDtoH:
		return false, c.handleDtoHV2(r.tag, req)
	case hix.ReqLaunch:
		if c.srv.cfg.Faults.Fire(faults.GPUDeviceFault) {
			c.send(wire.OpError, wire.EncodeError(wire.ECodeServer, "injected device fault"))
			return false, errors.New("injected device fault")
		}
		return false, c.replyErrT(r.tag, c.sess.Launch(req.Kernel, req.Params), 0)
	case hix.ReqClose:
		if err := c.replyErrT(r.tag, c.sess.Close(), 0); err != nil {
			return true, err
		}
		c.send(wire.OpGoodbye, nil)
		return true, nil
	default:
		return false, c.replyT(r.tag, hix.Response{Status: hix.RespBadRequest})
	}
}

// handleDtoHV2 bridges a download and streams it back as tagged Data
// frames (each a pooled copy the writer releases) after the response.
func (c *conn) handleDtoHV2(tag uint32, req hix.Request) error {
	if req.Len == 0 || req.Len > c.srv.cfg.MaxTransfer {
		c.send(wire.OpError, wire.EncodeError(wire.ECodeRequest,
			fmt.Sprintf("DtoH length %d out of range (max %d)", req.Len, c.srv.cfg.MaxTransfer)))
		return fmt.Errorf("DtoH length %d out of range", req.Len)
	}
	xfer := wire.GetBuf(int(req.Len))
	defer xfer.Release()
	buf := xfer.Bytes()
	err := c.sess.MemcpyDtoH(buf, hixrt.Ptr(req.Ptr), len(buf))
	if rerr := c.replyErrT(tag, err, 0); rerr != nil {
		return rerr
	}
	if err != nil {
		return nil // error response sent; no payload follows
	}
	for off := 0; off < len(buf); off += c.srv.cfg.MaxData {
		end := min(off+c.srv.cfg.MaxData, len(buf))
		// Each chunk is copied into its own pooled buffer so the shared
		// xfer buffer can recycle as soon as this handler returns,
		// regardless of how far behind the writer is.
		cb := wire.GetBuf(end - off)
		copy(cb.Bytes(), buf[off:end])
		if !c.sendT(wire.OpTData, tag, cb.Bytes(), cb) {
			return errors.New("DtoH payload: send queue failed")
		}
	}
	return nil
}

// replyErrT is replyErr for tagged replies.
func (c *conn) replyErrT(tag uint32, err error, value uint64) error {
	switch {
	case err == nil:
		return c.replyT(tag, hix.Response{Status: hix.RespOK, Value: value})
	case errors.Is(err, hixrt.ErrAuth):
		return c.replyT(tag, hix.Response{Status: hix.RespAuthFailed})
	case errors.Is(err, hixrt.ErrRequest):
		return c.replyT(tag, hix.Response{Status: hix.RespError})
	case errors.Is(err, hixrt.ErrClosed):
		c.send(wire.OpError, wire.EncodeError(wire.ECodeRequest, "session closed"))
		return err
	default:
		c.send(wire.OpError, wire.EncodeError(wire.ECodeServer, err.Error()))
		return err
	}
}

// replyT queues one tagged Response frame, stamped with the session's
// simulated completion instant.
func (c *conn) replyT(tag uint32, resp hix.Response) error {
	resp.CompleteNS = int64(c.sess.Now())
	if !c.sendT(wire.OpTResponse, tag, resp.Encode(), nil) {
		return errors.New("netserve: send queue failed")
	}
	return nil
}

// handleRequest bridges one wire request onto the session. It reports
// done=true when the connection should end (client close), and a
// non-nil error when the connection is no longer coherent (an Error
// frame has already been queued where one applies).
func (c *conn) handleRequest(body []byte) (done bool, err error) {
	req, err := hix.DecodeRequest(body)
	if err != nil {
		c.send(wire.OpError, wire.EncodeError(wire.ECodeProto, err.Error()))
		return false, err
	}
	if req.Flags&gpu.FlagSynthetic != 0 {
		// Remote sessions are always functional: synthetic (timing-only)
		// transfers carry no bytes and cannot be bridged faithfully.
		return false, c.reply(hix.Response{Status: hix.RespBadRequest})
	}
	switch req.Type {
	case hix.ReqMemAlloc:
		ptr, err := c.sess.MemAlloc(req.Size)
		return false, c.replyErr(err, uint64(ptr))
	case hix.ReqManagedAlloc:
		ptr, err := c.sess.ManagedAlloc(req.Size)
		return false, c.replyErr(err, uint64(ptr))
	case hix.ReqMemFree, hix.ReqManagedFree:
		return false, c.replyErr(c.sess.MemFree(hixrt.Ptr(req.Ptr)), 0)
	case hix.ReqMemcpyHtoD:
		return false, c.handleHtoD(req)
	case hix.ReqMemcpyDtoH:
		return false, c.handleDtoH(req)
	case hix.ReqLaunch:
		if c.srv.cfg.Faults.Fire(faults.GPUDeviceFault) {
			c.send(wire.OpError, wire.EncodeError(wire.ECodeServer, "injected device fault"))
			return false, errors.New("injected device fault")
		}
		return false, c.replyErr(c.sess.Launch(req.Kernel, req.Params), 0)
	case hix.ReqClose:
		if err := c.replyErr(c.sess.Close(), 0); err != nil {
			return true, err
		}
		c.send(wire.OpGoodbye, nil)
		return true, nil
	default:
		return false, c.reply(hix.Response{Status: hix.RespBadRequest})
	}
}

// handleHtoD consumes the request's Data frames and bridges the upload.
func (c *conn) handleHtoD(req hix.Request) error {
	if req.Len == 0 || req.Len > c.srv.cfg.MaxTransfer {
		// Reject before consuming payload; the stream is desynced, so
		// this is terminal.
		c.send(wire.OpError, wire.EncodeError(wire.ECodeRequest,
			fmt.Sprintf("HtoD length %d out of range (max %d)", req.Len, c.srv.cfg.MaxTransfer)))
		return fmt.Errorf("HtoD length %d out of range", req.Len)
	}
	buf := make([]byte, req.Len)
	got := 0
	for got < len(buf) {
		op, body, err := c.readFrame()
		if err != nil {
			return fmt.Errorf("HtoD payload: %w", err)
		}
		if op != wire.OpData {
			c.send(wire.OpError, wire.EncodeError(wire.ECodeProto,
				fmt.Sprintf("expected data, got %v", op)))
			return fmt.Errorf("HtoD payload: unexpected %v", op)
		}
		// Exact framing, mirroring the client's readPayload: each Data
		// frame must carry exactly min(MaxData, remaining) bytes. An
		// over-send or short chunk means the peer's framing has
		// desynced from ours — terminal, before any partial payload
		// reaches the session.
		want := min(c.srv.cfg.MaxData, len(buf)-got)
		if len(body) != want {
			c.send(wire.OpError, wire.EncodeError(wire.ECodeProto,
				fmt.Sprintf("HtoD payload desync: %d-byte frame at offset %d, want exactly %d",
					len(body), got, want)))
			return fmt.Errorf("HtoD payload desync (%d at %d, want %d)", len(body), got, want)
		}
		copy(buf[got:], body)
		got += len(body)
	}
	return c.replyErr(c.sess.MemcpyHtoD(hixrt.Ptr(req.Ptr), buf, len(buf)), 0)
}

// handleDtoH bridges the download and streams the bytes back as Data
// frames after the OK response.
func (c *conn) handleDtoH(req hix.Request) error {
	if req.Len == 0 || req.Len > c.srv.cfg.MaxTransfer {
		c.send(wire.OpError, wire.EncodeError(wire.ECodeRequest,
			fmt.Sprintf("DtoH length %d out of range (max %d)", req.Len, c.srv.cfg.MaxTransfer)))
		return fmt.Errorf("DtoH length %d out of range", req.Len)
	}
	buf := make([]byte, req.Len)
	err := c.sess.MemcpyDtoH(buf, hixrt.Ptr(req.Ptr), len(buf))
	if rerr := c.replyErr(err, 0); rerr != nil {
		return rerr
	}
	if err != nil {
		return nil // error response sent; no payload follows
	}
	for off := 0; off < len(buf); off += c.srv.cfg.MaxData {
		end := min(off+c.srv.cfg.MaxData, len(buf))
		if !c.send(wire.OpData, buf[off:end]) {
			return errors.New("DtoH payload: send queue failed")
		}
	}
	return nil
}

// replyErr maps a session-API error onto the wire, mirroring the
// in-process error surface: auth failures become RespAuthFailed,
// request refusals RespError; transport-level failures (closed session,
// machine faults) are terminal and answer an Error frame instead.
func (c *conn) replyErr(err error, value uint64) error {
	switch {
	case err == nil:
		return c.reply(hix.Response{Status: hix.RespOK, Value: value})
	case errors.Is(err, hixrt.ErrAuth):
		return c.reply(hix.Response{Status: hix.RespAuthFailed})
	case errors.Is(err, hixrt.ErrRequest):
		return c.reply(hix.Response{Status: hix.RespError})
	case errors.Is(err, hixrt.ErrClosed):
		c.send(wire.OpError, wire.EncodeError(wire.ECodeRequest, "session closed"))
		return err
	default:
		c.send(wire.OpError, wire.EncodeError(wire.ECodeServer, err.Error()))
		return err
	}
}

// reply queues one Response frame, stamped with the session's simulated
// completion instant so remote clients see sim time.
func (c *conn) reply(resp hix.Response) error {
	resp.CompleteNS = int64(c.sess.Now())
	if !c.send(wire.OpResponse, resp.Encode()) {
		return errors.New("netserve: send queue failed")
	}
	return nil
}
