package netserve_test

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/hixrt"
	"repro/internal/machine"
	"repro/internal/netserve"
	"repro/internal/sched"
)

// loadReplayRun drives one deterministic replay of an open-loop
// schedule: sequential dispatch (each arrival completes before the
// next fires) with the scheduler's rate-limiter clock pinned to the
// schedule's virtual arrival times, then returns the fleet-merged
// admission trace and every readback payload.
func loadReplayRun(t *testing.T, seed string, requests int) ([]sched.AdmitEvent, [][]byte) {
	t.Helper()
	var vclock atomic.Int64
	srv, addr := startServer(t, netserve.Config{
		Sched:         true,
		SchedTrace:    true,
		SchedNowNanos: func() int64 { return vclock.Load() },
		MachineConfig: &machine.Config{PlatformSeed: "load-replay|" + seed},
	})
	const sessions = 3
	const maxPayload = 32 << 10
	rc := hixrt.RemoteConfig{}
	var ss []*hixrt.RemoteSession
	var bufs []hixrt.Ptr
	for i := 0; i < sessions; i++ {
		s, err := hixrt.DialConfig(addr, rc)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer s.Close()
		p, err := s.MemAlloc(maxPayload)
		if err != nil {
			t.Fatal(err)
		}
		ss, bufs = append(ss, s), append(bufs, p)
	}
	schedule := hixrt.LoadSchedule(hixrt.LoadConfig{
		Rate: 5000, Requests: requests, PayloadSigma: 1, PayloadMax: maxPayload, Seed: seed,
	})
	var reads [][]byte
	for _, a := range schedule {
		// Replay: virtual time IS the schedule. Every token-bucket refill
		// decision sees the arrival's due instant, never the wall clock.
		vclock.Store(a.Due)
		i := a.Index % sessions
		data := make([]byte, a.Payload)
		for j := range data {
			data[j] = byte(a.Index*131 + j*7)
		}
		if err := ss[i].MemcpyHtoD(bufs[i], data, len(data)); err != nil {
			t.Fatalf("arrival %d HtoD: %v", a.Index, err)
		}
		out := make([]byte, a.Payload)
		if err := ss[i].MemcpyDtoH(out, bufs[i], len(out)); err != nil {
			t.Fatalf("arrival %d DtoH: %v", a.Index, err)
		}
		reads = append(reads, out)
	}
	var trace []sched.AdmitEvent
	for _, sc := range srv.Scheds() {
		st := sc.Snapshot()
		for _, ts := range st.Tenants {
			// The injected clock is frozen across each submit→admit span,
			// so every ticket's queue wait must be exactly zero — the
			// wall clock would leak microseconds in here.
			if ts.WaitNS != 0 {
				t.Fatalf("tenant %s wait=%dns under a pinned clock (injected clock not plumbed?)",
					ts.Name, ts.WaitNS)
			}
		}
		trace = append(trace, sc.TraceEvents()...)
	}
	if q := srv.Queue(); q.Pending != 0 || q.MaxPending < 1 {
		t.Fatalf("queue stats inconsistent after drain: %+v", q)
	}
	return trace, reads
}

// TestLoadReplayAdmissionTraceDeterministic is the satellite regression
// test: two same-seed load replays produce identical admission traces
// (and identical payload readbacks). Before the clock was injectable,
// the rate-limiter read time.Now().UnixNano() and the trace depended
// on the host.
func TestLoadReplayAdmissionTraceDeterministic(t *testing.T) {
	tr1, rd1 := loadReplayRun(t, "seed-A", 24)
	tr2, rd2 := loadReplayRun(t, "seed-A", 24)
	if len(tr1) == 0 {
		t.Fatal("empty admission trace")
	}
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatalf("same-seed admission traces differ:\n%s\nvs\n%s", fmtTrace(tr1), fmtTrace(tr2))
	}
	if !reflect.DeepEqual(rd1, rd2) {
		t.Fatal("same-seed readbacks differ")
	}
	tr3, _ := loadReplayRun(t, "seed-A", 30)
	if reflect.DeepEqual(tr1, tr3) {
		t.Fatal("different offered load produced an identical trace (trace not load-dependent?)")
	}
}

func fmtTrace(tr []sched.AdmitEvent) string {
	s := ""
	for _, e := range tr {
		s += fmt.Sprintf("%+v ", e)
	}
	return s
}
