package netserve_test

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/hix"
	"repro/internal/hixrt"
	"repro/internal/netserve"
	"repro/internal/wire"
)

// TestVersionNegotiationCompat: a v2 stack must interoperate with a
// v1-capped peer on either side, settling on lock-step; two v2 peers
// settle on the pipelined transport with the negotiated window.
func TestVersionNegotiationCompat(t *testing.T) {
	t.Run("server capped at v1", func(t *testing.T) {
		_, addr := startServer(t, netserve.Config{MaxWireVersion: wire.Version1})
		s, err := hixrt.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if s.Version() != wire.Version1 {
			t.Fatalf("version %d, want 1", s.Version())
		}
		if s.MaxInFlight() != 1 {
			t.Fatalf("MaxInFlight %d, want 1 on lock-step", s.MaxInFlight())
		}
		if err := runMatrixAdd(s, 12); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("client capped at v1", func(t *testing.T) {
		_, addr := startServer(t, netserve.Config{})
		s, err := hixrt.DialConfig(addr, hixrt.RemoteConfig{MaxWireVersion: wire.Version1})
		if err != nil {
			t.Fatal(err)
		}
		if s.Version() != wire.Version1 {
			t.Fatalf("version %d, want 1", s.Version())
		}
		if err := runMatrixAdd(s, 12); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("both v2, client window cap", func(t *testing.T) {
		_, addr := startServer(t, netserve.Config{MaxInFlight: 16})
		s, err := hixrt.DialConfig(addr, hixrt.RemoteConfig{MaxInFlight: 3})
		if err != nil {
			t.Fatal(err)
		}
		if s.Version() < wire.Version2 {
			t.Fatalf("version %d, want >= 2", s.Version())
		}
		if s.MaxInFlight() != 3 {
			t.Fatalf("MaxInFlight %d, want client cap 3", s.MaxInFlight())
		}
		if err := runMatrixAdd(s, 12); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("server bound wins below client cap", func(t *testing.T) {
		_, addr := startServer(t, netserve.Config{MaxInFlight: 2})
		s, err := hixrt.DialConfig(addr, hixrt.RemoteConfig{MaxInFlight: 64})
		if err != nil {
			t.Fatal(err)
		}
		if s.MaxInFlight() != 2 {
			t.Fatalf("MaxInFlight %d, want server bound 2", s.MaxInFlight())
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestPipelinedStartAPI keeps a window of transfers and launches in
// flight against a real server and verifies every round trip
// bit-exactly.
func TestPipelinedStartAPI(t *testing.T) {
	_, addr := startServer(t, netserve.Config{MaxInFlight: 8})
	s, err := hixrt.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 6
	const size = 96 << 10 // several wire chunks per transfer
	ptrs := make([]hixrt.Ptr, n)
	bufs := make([][]byte, n)
	for i := range ptrs {
		p, err := s.MemAlloc(size)
		if err != nil {
			t.Fatal(err)
		}
		ptrs[i] = p
		bufs[i] = make([]byte, size)
		for j := range bufs[i] {
			bufs[i][j] = byte(i*31 + j)
		}
	}
	// Phase 1: all uploads in flight at once.
	ups := make([]*hixrt.Pending, n)
	for i := range ptrs {
		ups[i] = s.StartMemcpyHtoD(ptrs[i], bufs[i])
	}
	for i, p := range ups {
		if err := p.Wait(); err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
	}
	// Phase 2: a launch riding the same window as the readbacks that
	// follow it — completion order is the server's serial execution
	// order, routing is by tag.
	lp := s.StartLaunch("nop", [gpu.NumKernelParams]uint64{})
	outs := make([][]byte, n)
	downs := make([]*hixrt.Pending, n)
	for i := range ptrs {
		outs[i] = make([]byte, size)
		downs[i] = s.StartMemcpyDtoH(outs[i], ptrs[i])
	}
	if err := lp.Wait(); err != nil {
		t.Fatalf("launch: %v", err)
	}
	for i, p := range downs {
		if err := p.Wait(); err != nil {
			t.Fatalf("readback %d: %v", i, err)
		}
		if !bytes.Equal(outs[i], bufs[i]) {
			t.Fatalf("round-trip corruption on buffer %d", i)
		}
	}
	for _, p := range ptrs {
		if err := s.MemFree(p); err != nil {
			t.Fatal(err)
		}
	}
}

// tframe builds a raw tagged frame: outer header, then the tag as the
// first four body bytes.
func tframe(op byte, tag uint32, body []byte) []byte {
	raw := make([]byte, wire.HeaderSize+wire.TagSize+len(body))
	binary.LittleEndian.PutUint32(raw, uint32(wire.TagSize+len(body)))
	raw[4] = op
	binary.LittleEndian.PutUint32(raw[wire.HeaderSize:], tag)
	copy(raw[wire.HeaderSize+wire.TagSize:], body)
	return raw
}

// helloV2 performs a full-range handshake and asserts the server
// answered v2.
func (r *rawConn) helloV2() {
	r.t.Helper()
	h := wire.Hello{MinVersion: wire.MinVersion, MaxVersion: wire.MaxVersion,
		Measurement: hixrt.DefaultRemoteMeasurement()}
	var buf bytes.Buffer
	if err := wire.WriteFrame(&buf, wire.OpHello, h.Encode()); err != nil {
		r.t.Fatal(err)
	}
	r.write(buf.Bytes())
	op, body, err := wire.ReadFrame(r.nc)
	if err != nil || op != wire.OpWelcome {
		r.t.Fatalf("handshake: op=%v err=%v", op, err)
	}
	w, err := wire.DecodeWelcome(body)
	if err != nil {
		r.t.Fatal(err)
	}
	if w.Version < wire.Version2 || w.MaxInFlight < 1 {
		r.t.Fatalf("welcome %+v, want v2+ with a window", w)
	}
}

// TestMalformedFramesV2 throws v2-specific protocol garbage at a live
// server: tag truncation, v1 frames on a v2 stream, wrong-tag payload
// chunks. Every case must yield a typed error frame and leave the
// server serving.
func TestMalformedFramesV2(t *testing.T) {
	_, addr := startServer(t, netserve.Config{ReadTimeout: 1 * time.Second})

	cases := []struct {
		name string
		run  func(t *testing.T, r *rawConn)
	}{
		{"untagged request on v2 stream", func(t *testing.T, r *rawConn) {
			req := hix.Request{Type: hix.ReqMemAlloc, Size: 64}
			r.write(frame(byte(wire.OpRequest), req.Encode()))
			r.expectError(wire.ECodeProto)
		}},
		{"tag truncated", func(t *testing.T, r *rawConn) {
			r.write(frame(byte(wire.OpTRequest), []byte{1, 2}))
			r.expectError(wire.ECodeProto)
		}},
		{"malformed request after tag", func(t *testing.T, r *rawConn) {
			r.write(tframe(byte(wire.OpTRequest), 1, []byte("short")))
			r.expectError(wire.ECodeProto)
		}},
		{"huge HtoD length", func(t *testing.T, r *rawConn) {
			req := hix.Request{Type: hix.ReqMemcpyHtoD, Len: 1 << 40}
			r.write(tframe(byte(wire.OpTRequest), 1, req.Encode()))
			r.expectError(wire.ECodeRequest)
		}},
		{"HtoD payload wrong tag", func(t *testing.T, r *rawConn) {
			req := hix.Request{Type: hix.ReqMemcpyHtoD, Len: 8}
			r.write(tframe(byte(wire.OpTRequest), 1, req.Encode()))
			r.write(tframe(byte(wire.OpTData), 2, make([]byte, 8)))
			r.expectError(wire.ECodeProto)
		}},
		{"HtoD payload untagged", func(t *testing.T, r *rawConn) {
			req := hix.Request{Type: hix.ReqMemcpyHtoD, Len: 8}
			r.write(tframe(byte(wire.OpTRequest), 1, req.Encode()))
			r.write(frame(byte(wire.OpData), make([]byte, 8)))
			r.expectError(wire.ECodeProto)
		}},
		{"HtoD short chunk desync", func(t *testing.T, r *rawConn) {
			req := hix.Request{Type: hix.ReqMemcpyHtoD, Len: 8}
			r.write(tframe(byte(wire.OpTRequest), 1, req.Encode()))
			r.write(tframe(byte(wire.OpTData), 1, make([]byte, 4)))
			r.expectError(wire.ECodeProto)
		}},
		{"synthetic flag rejected per tag", func(t *testing.T, r *rawConn) {
			req := hix.Request{Type: hix.ReqMemcpyHtoD, Len: 16, Flags: gpu.FlagSynthetic}
			r.write(tframe(byte(wire.OpTRequest), 7, req.Encode()))
			op, body, err := wire.ReadFrame(r.nc)
			if err != nil || op != wire.OpTResponse {
				t.Fatalf("op=%v err=%v", op, err)
			}
			tag, rest, err := wire.SplitTag(body)
			if err != nil || tag != 7 {
				t.Fatalf("tag=%d err=%v, want 7", tag, err)
			}
			resp, err := hix.DecodeResponse(rest)
			if err != nil || resp.Status != hix.RespBadRequest {
				t.Fatalf("resp=%+v err=%v, want RespBadRequest", resp, err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := dialRaw(t, addr)
			r.helloV2()
			tc.run(t, r)
			// The server must still serve a well-formed client.
			s, err := hixrt.Dial(addr)
			if err != nil {
				t.Fatalf("server wedged after %q: %v", tc.name, err)
			}
			if err := runMatrixAdd(s, 8); err != nil {
				t.Fatalf("server broken after %q: %v", tc.name, err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
