package netserve

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attest"
	"repro/internal/ocb"
)

// Ticket validation errors. Every refusal is typed so the handshake
// can log the class and fall back to the full-DH path; none of them
// is ever surfaced to the client (a refused ticket is not an attack
// signal the server should amplify — the client simply pays the full
// handshake it would have paid anyway).
var (
	// ErrTicketInvalid covers tickets that fail structural or
	// cryptographic validation (truncated, forged, sealed under a key
	// this server never had).
	ErrTicketInvalid = errors.New("netserve: ticket invalid")
	// ErrTicketReplay marks a ticket presented twice: tickets are
	// strictly single-use (each Welcome reissues a fresh one).
	ErrTicketReplay = errors.New("netserve: ticket already used")
	// ErrTicketExpired marks a ticket past its expiry.
	ErrTicketExpired = errors.New("netserve: ticket expired")
	// ErrTicketStale marks a ticket sealed under a generation older
	// than the previous one (two rotations ago or more).
	ErrTicketStale = errors.New("netserve: ticket generation stale")
	// ErrTicketMeasure marks a ticket bound to a measurement other
	// than the one the client's Hello claims.
	ErrTicketMeasure = errors.New("netserve: ticket measurement mismatch")
	// ErrTicketRevoked marks a ticket whose measurement was revoked.
	ErrTicketRevoked = errors.New("netserve: ticket measurement revoked")
	// errTicketPlacement marks a resumed placement that could not land
	// on the ticket's device (capacity moved on; full DH re-places).
	errTicketPlacement = errors.New("netserve: resumed placement displaced")
)

// DefaultTicketTTL bounds a ticket's life when Config.TicketTTL is
// zero. Short enough that the anti-replay window stays small, long
// enough to cover any realistic redial storm.
const DefaultTicketTTL = 10 * time.Minute

// resumeState is the plaintext a ticket seals: everything needed to
// re-arm the session with zero public-key work, plus the placement
// hint that puts it back on its extent freelist.
type resumeState struct {
	sid       uint32
	key       [attest.SessionKeySize]byte
	measure   attest.Measurement
	device    uint16
	partition uint16
	expiryNS  int64
}

const (
	ticketNonceSize = 12
	// Clear prefix: generation (8) + issuing device (2), authenticated
	// as associated data so it cannot be swapped under the seal.
	ticketHdrSize = 8 + 2
	// Sealed payload: sid(4) + key(16) + measurement(32) + partition(2) + expiry(8).
	ticketBodySize = 4 + attest.SessionKeySize + len(attest.Measurement{}) + 2 + 8
	ticketSize     = ticketHdrSize + ticketNonceSize + ticketBodySize + ocb.TagSize
)

// DeviceResumeStats is one device's slice of the resumption ledger:
// tickets minted for sessions hosted there, and resumes it accepted.
type DeviceResumeStats struct {
	Device   int   `json:"device"`
	Issued   int64 `json:"issued"`
	Accepted int64 `json:"accepted"`
}

// ResumeStats is the hix.resume counter block: the lifecycle of every
// ticket this server issued or was shown.
type ResumeStats struct {
	Issued         int64 `json:"issued"`
	Accepted       int64 `json:"accepted"`
	Fallbacks      int64 `json:"fallbacks"`
	ReplaysRefused int64 `json:"replays_refused"`
	Expired        int64 `json:"expired"`
	StaleGen       int64 `json:"stale_gen"`
	WrongMeasure   int64 `json:"wrong_measure"`
	Revoked        int64 `json:"revoked"`
}

// ticketKeeper mints and validates resumption tickets. The sealing
// key is derived per (secret, issuing enclave measurement, generation)
// via attest.TicketKey; rotating the generation invalidates everything
// older than one rotation, and revoking a tenant measurement refuses
// its tickets without touching the generation.
//
// The keeper's secret comes from crypto/rand, never from the machine's
// seeded entropy: ticket bytes ride the wire outside every
// ciphertext-identity comparison, and drawing from machine entropy
// would shift the deterministic DH draws that all committed
// fingerprint gates depend on.
type ticketKeeper struct {
	mu      sync.Mutex
	secret  [32]byte
	gen     uint64
	nonce   uint64                          // counter behind every sealed nonce — never repeats per secret
	used    map[[ticketNonceSize]byte]int64 // single-use anti-replay window: nonce -> expiry
	revoked map[attest.Measurement]bool
	perDev  map[uint16]*DeviceResumeStats
	enclave func(device int) (attest.Measurement, bool)
	ttl     time.Duration
	now     func() int64

	issued         atomic.Int64
	accepted       atomic.Int64
	fallbacks      atomic.Int64
	replaysRefused atomic.Int64
	expired        atomic.Int64
	staleGen       atomic.Int64
	wrongMeasure   atomic.Int64
	revokedHits    atomic.Int64
}

// newTicketKeeper builds a keeper over the fleet's enclaves. enclave
// resolves a device index to its GPU enclave's measurement (the
// per-device component of the key derivation).
func newTicketKeeper(enclave func(device int) (attest.Measurement, bool), ttl time.Duration, now func() int64) (*ticketKeeper, error) {
	k := &ticketKeeper{
		gen:     1,
		used:    make(map[[ticketNonceSize]byte]int64),
		revoked: make(map[attest.Measurement]bool),
		perDev:  make(map[uint16]*DeviceResumeStats),
		enclave: enclave,
		ttl:     ttl,
		now:     now,
	}
	if k.ttl <= 0 {
		k.ttl = DefaultTicketTTL
	}
	if k.now == nil {
		k.now = func() int64 { return time.Now().UnixNano() }
	}
	if _, err := rand.Read(k.secret[:]); err != nil {
		return nil, fmt.Errorf("netserve: ticket secret: %w", err)
	}
	return k, nil
}

// aeadFor derives the sealing AEAD for (device, gen).
func (k *ticketKeeper) aeadFor(device int, gen uint64) (*ocb.AEAD, error) {
	measure, ok := k.enclave(device)
	if !ok {
		return nil, fmt.Errorf("%w: device %d", ErrTicketInvalid, device)
	}
	tk := attest.TicketKey(k.secret[:], measure, gen)
	return ocb.New(tk[:])
}

// Mint seals fresh resumption state into an opaque ticket.
func (k *ticketKeeper) Mint(st resumeState) ([]byte, error) {
	k.mu.Lock()
	gen := k.gen
	k.nonce++
	var nonce [ticketNonceSize]byte
	copy(nonce[:4], "tkt:")
	binary.LittleEndian.PutUint64(nonce[4:], k.nonce)
	k.mu.Unlock()

	aead, err := k.aeadFor(int(st.device), gen)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, ticketHdrSize+ticketNonceSize, ticketSize)
	le := binary.LittleEndian
	le.PutUint64(buf[0:], gen)
	le.PutUint16(buf[8:], st.device)
	copy(buf[ticketHdrSize:], nonce[:])

	body := make([]byte, ticketBodySize)
	le.PutUint32(body[0:], st.sid)
	copy(body[4:], st.key[:])
	copy(body[4+attest.SessionKeySize:], st.measure[:])
	off := 4 + attest.SessionKeySize + len(st.measure)
	le.PutUint16(body[off:], st.partition)
	le.PutUint64(body[off+2:], uint64(st.expiryNS))

	out := aead.Seal(buf, nonce[:], body, buf[:ticketHdrSize])
	k.issued.Add(1)
	k.mu.Lock()
	k.devRow(st.device).Issued++
	k.mu.Unlock()
	return out, nil
}

// devRow returns the per-device ledger row, creating it on first use.
// Callers hold k.mu.
func (k *ticketKeeper) devRow(device uint16) *DeviceResumeStats {
	row := k.perDev[device]
	if row == nil {
		row = &DeviceResumeStats{Device: int(device)}
		k.perDev[device] = row
	}
	return row
}

// noteAccepted records a successful resume, globally and per device.
func (k *ticketKeeper) noteAccepted(device uint16) {
	k.accepted.Add(1)
	k.mu.Lock()
	k.devRow(device).Accepted++
	k.mu.Unlock()
}

// DeviceStats snapshots the per-device ledger for a fleet of the given
// size; devices with no resumption traffic report zero rows.
func (k *ticketKeeper) DeviceStats(devices int) []DeviceResumeStats {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]DeviceResumeStats, devices)
	for i := range out {
		out[i].Device = i
		if row := k.perDev[uint16(i)]; row != nil {
			out[i].Issued, out[i].Accepted = row.Issued, row.Accepted
		}
	}
	return out
}

// Open validates a presented ticket against the claimed measurement
// and, on success, consumes its nonce (single use). Every refusal is
// one of the typed Ticket errors above.
func (k *ticketKeeper) Open(ticket []byte, claimed attest.Measurement) (resumeState, error) {
	if len(ticket) != ticketSize {
		return resumeState{}, fmt.Errorf("%w: length %d", ErrTicketInvalid, len(ticket))
	}
	le := binary.LittleEndian
	gen := le.Uint64(ticket[0:])
	device := le.Uint16(ticket[8:])

	k.mu.Lock()
	cur := k.gen
	k.mu.Unlock()
	// Current and previous generation only; anything older is a hard
	// refusal so rotation actually retires key material.
	if gen != cur && gen+1 != cur {
		k.staleGen.Add(1)
		return resumeState{}, fmt.Errorf("%w: generation %d, current %d", ErrTicketStale, gen, cur)
	}

	aead, err := k.aeadFor(int(device), gen)
	if err != nil {
		return resumeState{}, err
	}
	var nonce [ticketNonceSize]byte
	copy(nonce[:], ticket[ticketHdrSize:])
	body, err := aead.Open(nil, nonce[:], ticket[ticketHdrSize+ticketNonceSize:], ticket[:ticketHdrSize])
	if err != nil {
		return resumeState{}, fmt.Errorf("%w: seal does not open", ErrTicketInvalid)
	}

	var st resumeState
	st.sid = le.Uint32(body[0:])
	copy(st.key[:], body[4:])
	copy(st.measure[:], body[4+attest.SessionKeySize:])
	off := 4 + attest.SessionKeySize + len(st.measure)
	st.partition = le.Uint16(body[off:])
	st.expiryNS = int64(le.Uint64(body[off+2:]))
	st.device = device

	now := k.now()
	if now > st.expiryNS {
		k.expired.Add(1)
		return resumeState{}, fmt.Errorf("%w: by %s", ErrTicketExpired, time.Duration(now-st.expiryNS))
	}
	if st.measure != claimed {
		k.wrongMeasure.Add(1)
		return resumeState{}, ErrTicketMeasure
	}

	k.mu.Lock()
	defer k.mu.Unlock()
	if k.revoked[st.measure] {
		k.revokedHits.Add(1)
		return resumeState{}, ErrTicketRevoked
	}
	if _, dup := k.used[nonce]; dup {
		k.replaysRefused.Add(1)
		return resumeState{}, ErrTicketReplay
	}
	// Consume the nonce and prune entries whose tickets can no longer
	// validate anyway (expiry passed), bounding the window.
	k.used[nonce] = st.expiryNS
	for n, exp := range k.used {
		if now > exp {
			delete(k.used, n)
		}
	}
	return st, nil
}

// Expiry computes a fresh ticket's expiry instant.
func (k *ticketKeeper) Expiry() int64 { return k.now() + k.ttl.Nanoseconds() }

// Rotate advances the generation: tickets from the previous
// generation remain valid, anything older is refused from now on.
func (k *ticketKeeper) Rotate() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.gen++
	return k.gen
}

// Generation reports the current ticket-key generation.
func (k *ticketKeeper) Generation() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.gen
}

// Revoke refuses all outstanding tickets bound to the measurement
// (the measurement-registry hook: a deregistered tenant image cannot
// resume, it must pass the full attested handshake again — which the
// server's auth policy can then refuse).
func (k *ticketKeeper) Revoke(m attest.Measurement) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.revoked[m] = true
}

// Stats snapshots the counter block.
func (k *ticketKeeper) Stats() ResumeStats {
	return ResumeStats{
		Issued:         k.issued.Load(),
		Accepted:       k.accepted.Load(),
		Fallbacks:      k.fallbacks.Load(),
		ReplaysRefused: k.replaysRefused.Load(),
		Expired:        k.expired.Load(),
		StaleGen:       k.staleGen.Load(),
		WrongMeasure:   k.wrongMeasure.Load(),
		Revoked:        k.revokedHits.Load(),
	}
}
