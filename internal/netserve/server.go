// Package netserve is the network serving layer of the HIX
// reproduction: a TCP front-end that owns a simulated machine and its
// GPU enclave and serves remote clients speaking the internal/wire
// protocol (hixrt.Dial).
//
// Each accepted connection is bridged onto a full in-process HIX
// session: the server hosts the client's user enclave (its identity is
// the measurement from the wire handshake), performs the attested
// three-party key exchange with the GPU enclave, and drives the
// OCB-protected request queues and single-copy shared-segment data
// path on the client's behalf. The wire link stands in for the
// application↔user-enclave boundary of a client/server confidential
// offload deployment; every HIX security property holds unchanged
// behind it.
//
// The server is robust by construction:
//
//   - a connection limit with accept backpressure (the listener does
//     not accept beyond MaxConns; excess dials queue in the kernel);
//   - per-connection read and write deadlines, so a stalled peer
//     cannot pin a handler forever;
//   - a per-connection send queue drained by a dedicated writer
//     goroutine, so one slow client blocks only its own connection and
//     never a shared lock or the Serve engine;
//   - graceful shutdown that stops accepting, interrupts idle reads,
//     lets in-flight requests finish and flush their responses, and
//     closes every session deterministically.
package netserve

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/attest"
	"repro/internal/bench/hist"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/hix"
	"repro/internal/hixrt"
	"repro/internal/machine"
	"repro/internal/ocb"
	"repro/internal/part"
	"repro/internal/sched"
	"repro/internal/wire"
)

// QoSParams is one connection's fair-share policy, resolved from its
// handshake measurement by Config.QoS.
type QoSParams struct {
	// Weight is the tenant's fair-share weight (<= 0 means 1).
	Weight int
	// Class is the deadline class (default sched.Latency).
	Class sched.Class
	// Limit rate-limits the tenant in epoch cost units per second (zero
	// = unlimited).
	Limit sched.Limit
}

// Server errors.
var (
	// ErrServerClosed is returned by Serve after Shutdown.
	ErrServerClosed = errors.New("netserve: server closed")
	// ErrNotListening is returned by Serve before Listen.
	ErrNotListening = errors.New("netserve: not listening")
)

// Config assembles a Server.
type Config struct {
	// Machine is the simulated platform. Nil boots a default machine
	// (or MachineConfig if set).
	Machine *machine.Machine
	// MachineConfig configures the machine booted when Machine is nil.
	MachineConfig *machine.Config
	// Enclave is the GPU enclave to serve. Nil launches one on the
	// machine with a fresh vendor authority; non-nil requires Machine
	// and VendorPub.
	Enclave *hix.Enclave
	// VendorPub verifies the GPU enclave's endorsement when creating
	// user enclaves. Required iff Enclave is provided.
	VendorPub ed25519.PublicKey

	// ServeWorkers configures the enclave's serving engine when the
	// server launches it (default 1; ignored with a provided Enclave).
	ServeWorkers int
	// SegmentBytes sizes per-session shared segments when the server
	// launches the enclave (default hix.Launch's 32 MiB).
	SegmentBytes uint64
	// StagingSlots sizes the per-session in-VRAM staging ring when the
	// server launches the enclave.
	StagingSlots int
	// Kernels are registered with the enclave at construction.
	Kernels []*gpu.Kernel

	// MaxConns bounds concurrently served connections (default 8). The
	// accept loop blocks — backpressure — while at the limit.
	MaxConns int
	// ReadTimeout is the per-frame read deadline; an idle or stalled
	// peer is disconnected after it (default 30s).
	ReadTimeout time.Duration
	// WriteTimeout is the per-frame write deadline on the send side
	// (default 10s).
	WriteTimeout time.Duration
	// SendQueue is the per-connection send-queue depth in frames
	// (default 64).
	SendQueue int
	// MaxTransfer bounds one memcpy request's byte count (default
	// 64 MiB); larger requests are a protocol violation.
	MaxTransfer uint64
	// MaxInFlight bounds concurrently outstanding tagged requests per
	// v2 connection and is advertised in the v2 Welcome (default 32).
	MaxInFlight int
	// MaxData bounds one Data frame's payload on this server,
	// advertised in the Welcome (default wire.MaxData, which is also
	// the hard cap). Smaller values trade per-frame overhead for
	// finer-grained streaming — a latency/bench knob.
	MaxData int
	// MaxWireVersion caps the protocol version the server negotiates
	// (0 means the newest it speaks). Setting it to wire.Version1
	// forces lock-step connections — compatibility testing; capping at
	// wire.Version2 disables resumption tickets entirely.
	MaxWireVersion uint16

	// TicketTTL bounds resumption-ticket life (default
	// DefaultTicketTTL). Tickets are minted on every v3 Welcome and
	// accepted once within the TTL.
	TicketTTL time.Duration
	// TicketNowNanos injects the ticket clock (expiry + anti-replay
	// pruning; default wall clock). Tests pin it to step time
	// deterministically past an expiry.
	TicketNowNanos func() int64

	// SessionWorkers and SessionWindowSlots configure each bridged
	// session's crypto worker pool and request window (defaults: the
	// hixrt defaults).
	SessionWorkers     int
	SessionWindowSlots int
	// OnSession runs after each bridged session opens, before its
	// first request — instrumentation hook (e.g. ciphertext capture).
	OnSession func(*hixrt.Session)

	// Sched enables the cross-connection continuous-batching scheduler
	// (internal/sched): per-connection executors submit serving epochs
	// as tickets instead of waking the GPU enclave themselves, so
	// epochs from all connections coalesce into shared wakeups under
	// the QoS policy. Per-session behavior — ciphertext, per-tenant
	// timelines under sequential load — is identical to the direct
	// path.
	Sched bool
	// SchedQuantum and SchedMaxBatchCost tune the fair-share policy
	// (defaults: sched's). SchedMaxBatchCost is raised to hold at
	// least two SessionWindowSlots windows so a windowed epoch is
	// never an oversized ticket.
	SchedQuantum      int
	SchedMaxBatchCost int
	// SchedNowNanos injects the rate-limiter clock into every device
	// scheduler (default: wall clock). The load harness's replay mode
	// pins it to virtual time so token-bucket defer decisions — and
	// hence the admission trace — are deterministic at a given seed.
	SchedNowNanos func() int64
	// SchedTrace enables the per-scheduler admission trace
	// (sched.Config.Trace): unbounded growth, harness runs only.
	SchedTrace bool
	// QoS resolves a connection's fair-share parameters from its
	// handshake measurement — the server-side policy hook standing in
	// for a deployment's tenant database. Nil means every connection
	// gets weight 1, class Latency, no rate limit.
	QoS func(measure attest.Measurement) QoSParams

	// Logf receives connection-level diagnostics. Nil silences them.
	Logf func(format string, args ...any)

	// Faults optionally injects seeded substrate failures — accepted
	// connections failed or wrapped with wire faults, connections
	// dropped mid-serve, send queues overflowed, attestation
	// mismatches, OCB tag corruption, device faults. Nil disables
	// injection entirely.
	Faults *faults.Plane
	// AuthFailureThreshold trips the auth circuit breaker after this
	// many consecutive authentication/attestation handshake failures
	// (default 4; negative disables the breaker). While open, the
	// breaker refuses handshakes outright — a flood of forged
	// measurements never reaches expensive session setup.
	AuthFailureThreshold int
	// AuthBreakerCooloff is how many handshakes an open breaker
	// refuses before admitting one half-open trial (default 8). The
	// window is counted in connections, not wall time, so breaker
	// behavior is deterministic under the fault plane.
	AuthBreakerCooloff int
}

// Server owns a machine and its GPU-enclave fleet — one enclave per
// attached GPU — and serves remote sessions, placing each onto a
// device partition via the internal/part placer.
type Server struct {
	cfg       Config
	m         *machine.Machine
	ge        *hix.Enclave // primary (fleet device 0) enclave
	ges       []*hix.Enclave
	vendorPub ed25519.PublicKey

	// placer assigns each bridged session a device partition and VRAM
	// reservation; slots remembers the grant for release at teardown
	// (guarded by setupMu). sessDemand is one session's placement
	// demand: its in-VRAM staging-ring footprint.
	placer     *part.Placer
	slots      map[*hixrt.Session]part.Slot
	sessDemand uint64

	// scheds are the cross-connection batching schedulers, one per
	// enclave, index-aligned with ges (nil unless Config.Sched);
	// tenants maps each bridged session to its fair-share principal
	// for teardown (guarded by setupMu).
	scheds  []*sched.Scheduler
	tenants map[*hixrt.Session]*sched.Tenant

	// setupMu serializes session construction and teardown so enclave
	// and OS bookkeeping happen in a deterministic, race-free order.
	setupMu sync.Mutex

	// tickets mints and validates session-resumption tickets (v3).
	tickets *ticketKeeper

	// histMu guards loadHist, the per-request wall service-latency
	// histogram behind the hix.load.hist expvar.
	histMu   sync.Mutex
	loadHist hist.H

	sem chan struct{} // connection-limit semaphore

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool
	drainCh  chan struct{}

	wg        sync.WaitGroup // live connection handlers
	serveDone chan error

	// Auth circuit breaker (see Config.AuthFailureThreshold).
	bkMu          sync.Mutex
	bkOpen        bool
	bkConsecutive int
	bkRejectLeft  int
	bkTrips       int
}

// New assembles a server, booting the machine and launching the GPU
// enclave as needed, and registers cfg.Kernels.
func New(cfg Config) (*Server, error) {
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 8
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 30 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.SendQueue <= 0 {
		cfg.SendQueue = 64
	}
	if cfg.MaxTransfer == 0 {
		cfg.MaxTransfer = 64 << 20
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 32
	}
	if cfg.MaxInFlight > 0xFFFF {
		cfg.MaxInFlight = 0xFFFF
	}
	if cfg.MaxData <= 0 || cfg.MaxData > wire.MaxData {
		cfg.MaxData = wire.MaxData
	}
	if cfg.MaxWireVersion == 0 || cfg.MaxWireVersion > wire.MaxVersion {
		cfg.MaxWireVersion = wire.MaxVersion
	}
	if cfg.AuthFailureThreshold == 0 {
		cfg.AuthFailureThreshold = 4
	}
	if cfg.AuthBreakerCooloff <= 0 {
		cfg.AuthBreakerCooloff = 8
	}
	m := cfg.Machine
	if m == nil {
		if cfg.Enclave != nil {
			return nil, errors.New("netserve: Enclave provided without its Machine")
		}
		mc := machine.Config{}
		if cfg.MachineConfig != nil {
			mc = *cfg.MachineConfig
		}
		var err error
		m, err = machine.New(mc)
		if err != nil {
			return nil, err
		}
	}
	var ges []*hix.Enclave
	vendorPub := cfg.VendorPub
	if cfg.Enclave == nil {
		// Launch the fleet: one GPU enclave per attached device, all
		// endorsed by the same vendor authority. Identical driver
		// images mean identical measurements, so clients verify one
		// value regardless of where they are placed.
		vendor, err := attest.NewSigningAuthority()
		if err != nil {
			return nil, err
		}
		for i := range m.GPUs {
			ge, err := hix.Launch(hix.Config{
				Machine:             m,
				Vendor:              vendor,
				GPU:                 m.GPUBDFs[i],
				SessionSegmentBytes: cfg.SegmentBytes,
				StagingSlots:        cfg.StagingSlots,
				ServeWorkers:        cfg.ServeWorkers,
			})
			if err != nil {
				return nil, err
			}
			ges = append(ges, ge)
		}
		vendorPub = vendor.PublicKey()
	} else {
		if vendorPub == nil {
			return nil, errors.New("netserve: Enclave provided without VendorPub")
		}
		ges = []*hix.Enclave{cfg.Enclave}
	}
	for _, ge := range ges {
		for _, k := range cfg.Kernels {
			if err := ge.RegisterKernel(k); err != nil {
				return nil, err
			}
		}
	}
	// The placer's topology spans exactly the devices with enclaves:
	// the whole machine in fleet mode, the provided enclave's device
	// otherwise. Slot.Device indexes ges either way.
	topo := part.FromMachine(m)
	if cfg.Enclave != nil {
		topo = part.Topology{Devices: []part.DeviceInfo{{
			Index:      cfg.Enclave.DeviceIndex(),
			Name:       cfg.Enclave.GPUName(),
			Partitions: cfg.Enclave.Partitions(),
		}}}
	}
	var scheds []*sched.Scheduler
	if cfg.Sched {
		mbc := cfg.SchedMaxBatchCost
		if mbc <= 0 {
			mbc = 64 // sched's own default, made explicit to apply the window floor
		}
		// A windowed epoch costs up to SessionWindowSlots units; keep the
		// batch budget at two windows minimum so such an epoch is a
		// normal ticket, never the oversized-admit-alone special case.
		if ws := cfg.SessionWindowSlots; 2*ws > mbc {
			mbc = 2 * ws
		}
		// Same floor for launch windows, which gather up to MaxInFlight
		// pipelined launches into one ticket.
		if 2*cfg.MaxInFlight > mbc {
			mbc = 2 * cfg.MaxInFlight
		}
		for _, ge := range ges {
			scheds = append(scheds, sched.New(sched.Config{
				Batcher:      ge,
				Quantum:      cfg.SchedQuantum,
				MaxBatchCost: mbc,
				NowNanos:     cfg.SchedNowNanos,
				Trace:        cfg.SchedTrace,
			}))
		}
	}
	// One session's placement demand is its in-VRAM staging ring:
	// StagingSlots chunk-sized sealed slots (hix.Launch floors the ring
	// at the classic double buffer).
	slots := cfg.StagingSlots
	if slots < 2 {
		slots = 2
	}
	demand := uint64(slots) * (uint64(m.Cost.CryptoChunk) + ocb.TagSize)
	srv := &Server{
		cfg:        cfg,
		m:          m,
		ge:         ges[0],
		ges:        ges,
		vendorPub:  vendorPub,
		placer:     part.NewPlacer(topo),
		slots:      make(map[*hixrt.Session]part.Slot),
		sessDemand: demand,
		scheds:     scheds,
		tenants:    make(map[*hixrt.Session]*sched.Tenant),
		sem:        make(chan struct{}, cfg.MaxConns),
		conns:      make(map[*conn]struct{}),
		drainCh:    make(chan struct{}),
		serveDone:  make(chan error, 1),
	}
	keeper, err := srv.newKeeper()
	if err != nil {
		return nil, err
	}
	srv.tickets = keeper
	return srv, nil
}

// newKeeper builds the resumption-ticket keeper over this server's
// enclave fleet.
func (s *Server) newKeeper() (*ticketKeeper, error) {
	return newTicketKeeper(func(device int) (attest.Measurement, bool) {
		for _, ge := range s.ges {
			if ge.DeviceIndex() == device {
				return ge.Measurement(), true
			}
		}
		return attest.Measurement{}, false
	}, s.cfg.TicketTTL, s.cfg.TicketNowNanos)
}

// Machine exposes the simulated platform (bench instrumentation).
func (s *Server) Machine() *machine.Machine { return s.m }

// Enclave exposes the primary (fleet device 0) GPU enclave.
func (s *Server) Enclave() *hix.Enclave { return s.ge }

// Enclaves exposes the whole GPU-enclave fleet, device-ordered.
func (s *Server) Enclaves() []*hix.Enclave {
	return append([]*hix.Enclave(nil), s.ges...)
}

// Placer exposes the partition placement scheduler (expvar/bench).
func (s *Server) Placer() *part.Placer { return s.placer }

// Sched exposes the primary device's batching scheduler, nil unless
// Config.Sched (counters for expvar/bench).
func (s *Server) Sched() *sched.Scheduler {
	if len(s.scheds) == 0 {
		return nil
	}
	return s.scheds[0]
}

// Scheds exposes the per-device batching schedulers (device-ordered),
// empty unless Config.Sched. The load harness merges their snapshots
// and admission traces across the fleet.
func (s *Server) Scheds() []*sched.Scheduler {
	return append([]*sched.Scheduler(nil), s.scheds...)
}

// QueueStats is the serving front-end's queue-depth snapshot, the
// overload signal the load harness (and the hix.load expvar) watches:
// admission deferrals accumulate and pending tickets back up before
// latency collapses.
type QueueStats struct {
	Pending    int   `json:"pending"`     // tickets queued across the fleet
	MaxPending int   `json:"max_pending"` // high-water mark
	Deferrals  int64 `json:"deferrals"`   // rate-limiter deferrals
	Conns      int   `json:"conns"`       // live connections
	Sessions   int   `json:"sessions"`    // live hosted sessions
}

// Queue sums the per-device scheduler queue counters (zero when the
// scheduler is off).
func (s *Server) Queue() QueueStats {
	q := QueueStats{Conns: s.ConnCount(), Sessions: s.SessionCount()}
	for _, sc := range s.scheds {
		st := sc.Snapshot()
		q.Pending += st.Pending
		q.MaxPending += st.MaxPending
		q.Deferrals += st.Deferrals
	}
	return q
}

// encIdx maps a placed Slot.Device to its fleet index in ges/scheds.
// Identity in fleet mode; the provided-Enclave topology has one entry
// whose device index may be anything.
func (s *Server) encIdx(dev int) int {
	for i, ge := range s.ges {
		if ge.DeviceIndex() == dev {
			return i
		}
	}
	return 0
}

// VendorPub exposes the vendor endorsement key remote-session user
// enclaves verify against.
func (s *Server) VendorPub() ed25519.PublicKey { return s.vendorPub }

// Listen binds the TCP address (e.g. "127.0.0.1:0").
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		ln.Close()
		return nil, ErrServerClosed
	}
	if s.ln != nil {
		ln.Close()
		return nil, errors.New("netserve: already listening")
	}
	s.ln = ln
	return ln.Addr(), nil
}

// Addr reports the bound address, nil before Listen.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve runs the accept loop until Shutdown (returning ErrServerClosed)
// or a listener failure. A connection slot is acquired before each
// Accept, so the listener applies backpressure at MaxConns instead of
// accepting connections it cannot serve.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return ErrNotListening
	}
	for {
		select {
		case <-s.drainCh:
			return ErrServerClosed
		case s.sem <- struct{}{}:
		}
		if s.isDraining() {
			<-s.sem
			return ErrServerClosed
		}
		nc, err := ln.Accept()
		if err != nil {
			<-s.sem
			if s.isDraining() {
				return ErrServerClosed
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		nc = s.cfg.Faults.WrapConn(nc, "server")
		if s.cfg.Faults.Fire(faults.NetAccept) {
			s.logf("netserve: injected accept failure")
			_ = nc.Close()
			<-s.sem
			continue
		}
		c := newConn(s, nc)
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() { <-s.sem }()
			c.run()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Start is Listen + Serve in the background; the Serve result is
// available via Wait.
func (s *Server) Start(addr string) (net.Addr, error) {
	a, err := s.Listen(addr)
	if err != nil {
		return nil, err
	}
	go func() { s.serveDone <- s.Serve() }()
	return a, nil
}

// Wait blocks until a Serve started with Start returns.
func (s *Server) Wait() error { return <-s.serveDone }

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown gracefully stops the server: the listener closes, idle
// connection reads are interrupted, each handler finishes (and flushes
// the response of) any request already in flight, sends Goodbye, and
// closes its session. Shutdown returns once every handler exited, or
// force-closes the remaining connections when ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	if !already {
		close(s.drainCh)
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		c.interruptRead()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stopSched()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			_ = c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		s.stopSched()
		return ctx.Err()
	}
}

// stopSched shuts the batching schedulers down once every handler has
// exited (so no epoch can be submitted after the stop). Idempotent.
func (s *Server) stopSched() {
	for _, sc := range s.scheds {
		sc.Stop()
	}
}

// openSession builds the user enclave + attested session for one
// connection (name is the peer address, for scheduler diagnostics).
// Serialized so concurrent handshakes construct enclave and OS state in
// arrival order.
func (s *Server) openSession(measure attest.Measurement, name string) (*hixrt.Session, error) {
	s.setupMu.Lock()
	defer s.setupMu.Unlock()
	if s.cfg.Faults.Fire(faults.AttestMismatch) {
		return nil, fmt.Errorf("%w: injected measurement mismatch", hixrt.ErrAttestation)
	}
	// Resolve the tenant's QoS up front: the placer spreads Latency
	// sessions and packs Bulk ones, and the measurement keys partition
	// affinity so a reconnecting tenant lands back where it ran.
	q := QoSParams{Weight: 1}
	if s.cfg.QoS != nil {
		q = s.cfg.QoS(measure)
	}
	slot, err := s.placer.Place(part.Demand{
		VRAMBytes: s.sessDemand,
		Class:     q.Class,
		Affinity:  fmt.Sprintf("%x", measure[:]),
	})
	if err != nil {
		return nil, err
	}
	idx := s.encIdx(slot.Device)
	client, err := hixrt.NewClient(s.m, s.ges[idx], s.vendorPub, measure[:])
	if err != nil {
		_ = s.placer.Release(slot)
		return nil, err
	}
	client.Partition = slot.Partition + 1
	sess, err := client.OpenSession()
	if err != nil {
		_ = s.placer.Release(slot)
		return nil, err
	}
	s.slots[sess] = slot
	if s.cfg.SessionWorkers > 0 {
		sess.Workers = s.cfg.SessionWorkers
	}
	if s.cfg.SessionWindowSlots > 0 {
		sess.WindowSlots = s.cfg.SessionWindowSlots
	}
	if s.cfg.OnSession != nil {
		s.cfg.OnSession(sess)
	}
	s.installFaultHooks(sess)
	if len(s.scheds) > 0 {
		ten := s.scheds[idx].Join(name, sess.ID(), q.Weight, q.Class, q.Limit)
		sess.Gate = ten
		s.tenants[sess] = ten
	}
	return sess, nil
}

// openSessionResumed is openSession's zero-DH fast path: the sealed
// ticket already authenticated the tenant and carries the session key
// and original session ID, so no attestation and no key exchange run.
// The ticket's placement hint pins the demand to the exact partition
// the session was carved from; if placement cannot land back on the
// ticket's device (session IDs are per-enclave), the resume is
// refused and the caller falls back to the full handshake.
func (s *Server) openSessionResumed(st resumeState, name string) (*hixrt.Session, error) {
	s.setupMu.Lock()
	defer s.setupMu.Unlock()
	q := QoSParams{Weight: 1}
	if s.cfg.QoS != nil {
		q = s.cfg.QoS(st.measure)
	}
	slot, err := s.placer.Place(part.Demand{
		VRAMBytes:       s.sessDemand,
		Class:           q.Class,
		Affinity:        fmt.Sprintf("%x", st.measure[:]),
		Prefer:          true,
		PreferDevice:    int(st.device),
		PreferPartition: int(st.partition),
	})
	if err != nil {
		return nil, err
	}
	if slot.Device != int(st.device) {
		_ = s.placer.Release(slot)
		return nil, errTicketPlacement
	}
	idx := s.encIdx(slot.Device)
	client, err := hixrt.NewClient(s.m, s.ges[idx], s.vendorPub, st.measure[:])
	if err != nil {
		_ = s.placer.Release(slot)
		return nil, err
	}
	client.Partition = slot.Partition + 1
	sess, err := client.OpenResumedSession(st.sid, st.key)
	if err != nil {
		_ = s.placer.Release(slot)
		return nil, err
	}
	s.slots[sess] = slot
	if s.cfg.SessionWorkers > 0 {
		sess.Workers = s.cfg.SessionWorkers
	}
	if s.cfg.SessionWindowSlots > 0 {
		sess.WindowSlots = s.cfg.SessionWindowSlots
	}
	if s.cfg.OnSession != nil {
		s.cfg.OnSession(sess)
	}
	s.installFaultHooks(sess)
	if len(s.scheds) > 0 {
		ten := s.scheds[idx].Join(name, sess.ID(), q.Weight, q.Class, q.Limit)
		sess.Gate = ten
		s.tenants[sess] = ten
	}
	s.tickets.noteAccepted(st.device)
	return sess, nil
}

// mintTicket seals a fresh resumption ticket for the session (called
// on every v3 Welcome, full and resumed alike — tickets are single
// use, so each handshake hands out the next one).
func (s *Server) mintTicket(sess *hixrt.Session, measure attest.Measurement) ([]byte, error) {
	s.setupMu.Lock()
	slot, ok := s.slots[sess]
	s.setupMu.Unlock()
	if !ok {
		return nil, errors.New("netserve: session has no placement slot")
	}
	return s.tickets.Mint(resumeState{
		sid:       sess.ID(),
		key:       sess.ExportKey(),
		measure:   measure,
		device:    uint16(slot.Device),
		partition: uint16(slot.Partition),
		expiryNS:  s.tickets.Expiry(),
	})
}

// RotateTicketKey advances the ticket-key generation: tickets sealed
// under the previous generation stay valid, older ones are refused
// (their holders silently fall back to the full handshake). Returns
// the new generation.
func (s *Server) RotateTicketKey() uint64 { return s.tickets.Rotate() }

// TicketGeneration reports the current ticket-key generation.
func (s *Server) TicketGeneration() uint64 { return s.tickets.Generation() }

// RevokeTicketMeasurement refuses all outstanding tickets bound to
// the tenant measurement — the measurement-registry revocation hook.
func (s *Server) RevokeTicketMeasurement(m attest.Measurement) { s.tickets.Revoke(m) }

// ResumeStats snapshots the resumption counter block (hix.resume).
func (s *Server) ResumeStats() ResumeStats { return s.tickets.Stats() }

// ResumeDeviceStats snapshots the per-device resumption ledger: one
// row per fleet device with the tickets minted for sessions hosted
// there and the resumes it accepted.
func (s *Server) ResumeDeviceStats() []DeviceResumeStats {
	return s.tickets.DeviceStats(len(s.ges))
}

// observeServe records one request's wall service latency into the
// live load histogram.
func (s *Server) observeServe(d time.Duration) {
	s.histMu.Lock()
	s.loadHist.RecordDur(d)
	s.histMu.Unlock()
}

// LoadHist snapshots the per-request wall service-latency histogram
// behind the hix.load.hist expvar.
func (s *Server) LoadHist() hist.Summary {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	return s.loadHist.Summarize()
}

// installFaultHooks chains the GPU-tag corruption site onto the
// session's data-path hooks (composing with any OnSession
// instrumentation). The fault flips one byte of the sealed chunk
// sitting in the inter-enclave shared segment — the classic
// substrate-tampering attack — and the real OCB open then fails, so
// the client must see RespAuthFailed, never silently different bytes.
func (s *Server) installFaultHooks(sess *hixrt.Session) {
	p := s.cfg.Faults
	if p == nil {
		return
	}
	seg := sess.Segment()
	corrupt := func(off, n int) {
		if n == 0 || !p.Fire(faults.GPUTagCorrupt) {
			return
		}
		pos := off + n - 1
		var b [1]byte
		if err := s.m.OS.ShmReadPhys(seg, pos, b[:]); err != nil {
			return
		}
		b[0] ^= 0x41
		_ = s.m.OS.ShmWritePhys(seg, pos, b[:])
		s.logf("netserve: injected tag corruption at segment offset %d", pos)
	}
	prevW, prevR := sess.Hooks.AfterDataWrite, sess.Hooks.AfterDataReady
	sess.Hooks.AfterDataWrite = func(off, n int) {
		if prevW != nil {
			prevW(off, n)
		}
		corrupt(off, n)
	}
	sess.Hooks.AfterDataReady = func(off, n int) {
		if prevR != nil {
			prevR(off, n)
		}
		corrupt(off, n)
	}
}

// authAllow gates a handshake through the auth circuit breaker.
func (s *Server) authAllow() bool {
	if s.cfg.AuthFailureThreshold < 0 {
		return true
	}
	s.bkMu.Lock()
	defer s.bkMu.Unlock()
	if !s.bkOpen {
		return true
	}
	if s.bkRejectLeft > 0 {
		s.bkRejectLeft--
		return false
	}
	// Cooloff spent: admit one half-open trial.
	return true
}

// authResult feeds a handshake's auth outcome back to the breaker.
func (s *Server) authResult(ok bool) {
	if s.cfg.AuthFailureThreshold < 0 {
		return
	}
	s.bkMu.Lock()
	defer s.bkMu.Unlock()
	if ok {
		s.bkOpen = false
		s.bkConsecutive = 0
		return
	}
	s.bkConsecutive++
	if s.bkOpen {
		// The half-open trial failed: re-arm the cooloff.
		s.bkRejectLeft = s.cfg.AuthBreakerCooloff
		return
	}
	if s.bkConsecutive >= s.cfg.AuthFailureThreshold {
		s.bkOpen = true
		s.bkTrips++
		s.bkRejectLeft = s.cfg.AuthBreakerCooloff
	}
}

// BreakerTrips reports how many times the auth circuit breaker opened.
func (s *Server) BreakerTrips() int {
	s.bkMu.Lock()
	defer s.bkMu.Unlock()
	return s.bkTrips
}

// closeSession tears a bridged session down (idempotent if the client
// already sent ReqClose).
func (s *Server) closeSession(sess *hixrt.Session) {
	s.setupMu.Lock()
	defer s.setupMu.Unlock()
	// Close first — the close handshake is itself a gated epoch — then
	// retire the fair-share principal.
	if err := sess.Close(); err != nil {
		s.logf("netserve: session close: %v", err)
	}
	if ten := s.tenants[sess]; ten != nil {
		ten.Leave()
		delete(s.tenants, sess)
	}
	if slot, ok := s.slots[sess]; ok {
		if err := s.placer.Release(slot); err != nil {
			s.logf("netserve: slot release: %v", err)
		}
		delete(s.slots, sess)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// SessionCount reports the fleet's live session count (tests).
func (s *Server) SessionCount() int {
	n := 0
	for _, ge := range s.ges {
		n += ge.SessionCount()
	}
	return n
}

// ConnCount reports currently tracked connections (tests).
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// String describes the server (diagnostics).
func (s *Server) String() string {
	return fmt.Sprintf("netserve.Server(max_conns=%d, sessions=%d)", s.cfg.MaxConns, s.SessionCount())
}
