package netserve_test

import (
	"sync"
	"testing"

	"repro/internal/gpu"
	"repro/internal/hixrt"
	"repro/internal/machine"
	"repro/internal/netserve"
)

// benchLaunchStorm drives conns pipelined connections of nop launches —
// the launch-bound shape the scheduler's batch coalescing targets.
func benchLaunchStorm(b *testing.B, conns, depth int, schedOn bool) {
	srv, err := netserve.New(netserve.Config{
		MachineConfig: &machine.Config{
			DRAMBytes: 768 << 20, EPCBytes: 64 << 20, VRAMBytes: 512 << 20,
			Channels: 8, PlatformSeed: "sched-bench",
		},
		MaxConns:    conns,
		MaxInFlight: depth,
		Sched:       schedOn,
	})
	if err != nil {
		b.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		b.StopTimer()
	}()
	sessions := make([]*hixrt.RemoteSession, conns)
	for i := range sessions {
		s, err := hixrt.DialConfig(addr.String(), hixrt.RemoteConfig{MaxInFlight: depth})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		sessions[i] = s
	}
	rounds := b.N
	b.ResetTimer()
	var wg sync.WaitGroup
	errs := make([]error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := sessions[i]
			pend := make([]*hixrt.Pending, 0, rounds)
			for r := 0; r < rounds; r++ {
				pend = append(pend, s.StartLaunch("nop", [gpu.NumKernelParams]uint64{}))
			}
			for _, p := range pend {
				if err := p.Wait(); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	b.StopTimer()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	ss := srv.Enclave().ServeStats()
	b.ReportMetric(float64(ss.Requests)/float64(ss.Wakeups), "req/wakeup")
	if sc := srv.Sched(); sc != nil {
		st := sc.Snapshot()
		b.ReportMetric(float64(st.Tickets)/float64(st.Batches), "tickets/batch")
	}
}

func BenchmarkLaunchStormDirect(b *testing.B) { benchLaunchStorm(b, 8, 8, false) }
func BenchmarkLaunchStormSched(b *testing.B)  { benchLaunchStorm(b, 8, 8, true) }
