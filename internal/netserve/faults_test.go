package netserve_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/hix"
	"repro/internal/hixrt"
	"repro/internal/netserve"
	"repro/internal/wire"
	"repro/internal/workloads"
)

// waitDrained polls until the server has no live sessions or tracked
// connections, failing after the deadline.
func waitDrained(t *testing.T, srv *netserve.Server, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if srv.SessionCount() == 0 && srv.ConnCount() == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("not drained within %v: %d sessions, %d conns",
				within, srv.SessionCount(), srv.ConnCount())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMidPayloadPeerDeath kills the client between an HtoD request and
// its final Data frame. The hosted session must not leak, the handler
// must not hang past one ReadTimeout, and other connections must be
// unaffected.
func TestMidPayloadPeerDeath(t *testing.T) {
	const readTimeout = 500 * time.Millisecond
	for _, tc := range []struct {
		name  string
		abort func(r *rawConn)
	}{
		// The peer closes cleanly mid-payload: the handler sees EOF at
		// once.
		{"close", func(r *rawConn) { r.nc.Close() }},
		// The peer just stops sending: the handler must give up after
		// one ReadTimeout, not wait for the full payload forever.
		{"abandon", func(r *rawConn) {}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, addr := startServer(t, netserve.Config{ReadTimeout: readTimeout, MaxConns: 4})

			// A healthy concurrent client the dying peer must not poison.
			healthy, err := hixrt.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer healthy.Close()

			r := dialRaw(t, addr)
			r.hello()
			req := hix.Request{Type: hix.ReqMemcpyHtoD, Ptr: 0, Len: uint64(2 * wire.MaxData)}
			r.write(frame(byte(wire.OpRequest), req.Encode()))
			// First chunk arrives whole, then the peer dies before the
			// final Data frame.
			r.write(frame(byte(wire.OpData), make([]byte, wire.MaxData)))
			tc.abort(r)

			// The healthy connection serves requests while the dead
			// peer's handler is still stalled mid-payload.
			if err := runMatrixAdd(healthy, 12); err != nil {
				t.Fatalf("concurrent connection poisoned: %v", err)
			}
			if err := healthy.Close(); err != nil {
				t.Fatal(err)
			}
			// The dead peer's handler must give up within one
			// ReadTimeout of its last byte (plus scheduling slack), and
			// its session must not leak.
			waitDrained(t, srv, 2*readTimeout+2*time.Second)
		})
	}
}

// TestDrainAbortSendsGoodbye: a client with a frame partially arrived
// when Shutdown fires gets the grace period, and when the frame never
// completes, a clean Goodbye — not an "idle timeout" protocol error.
func TestDrainAbortSendsGoodbye(t *testing.T) {
	srv, err := netserve.New(netserve.Config{
		Kernels:     []*gpu.Kernel{workloads.MatrixAddKernel()},
		ReadTimeout: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := dialRaw(t, addr.String())
	r.hello()
	// Two bytes of a frame header, never completed.
	r.write([]byte{1, 2})
	time.Sleep(50 * time.Millisecond) // let the bytes reach the handler's buffer
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	op, _, err := wire.ReadFrame(r.nc)
	if err != nil || op != wire.OpGoodbye {
		t.Fatalf("drain-aborted client got op=%v err=%v, want goodbye", op, err)
	}
	if _, _, err := wire.ReadFrame(r.nc); err != io.EOF {
		t.Fatalf("after goodbye: %v, want EOF", err)
	}
	if got := srv.SessionCount(); got != 0 {
		t.Fatalf("%d sessions left", got)
	}
}

// TestAuthCircuitBreaker: consecutive injected attestation failures
// trip the breaker; while open, handshakes are refused without
// touching session setup; after the cooloff a half-open trial succeeds
// and closes it.
func TestAuthCircuitBreaker(t *testing.T) {
	plane := faults.New("breaker-test", faults.Config{
		Rates:  map[string]float64{faults.AttestMismatch: 1},
		Limits: map[string]int{faults.AttestMismatch: 3},
	})
	srv, addr := startServer(t, netserve.Config{
		Faults:               plane,
		AuthFailureThreshold: 3,
		AuthBreakerCooloff:   2,
	})

	dialErr := func() *wire.RemoteError {
		t.Helper()
		_, err := hixrt.Dial(addr)
		if err == nil {
			t.Fatal("dial succeeded, want auth refusal")
		}
		var re *wire.RemoteError
		if !errors.As(err, &re) {
			t.Fatalf("refusal not typed: %v", err)
		}
		if re.Code != wire.ECodeAuth {
			t.Fatalf("refusal code %d (%s), want ECodeAuth", re.Code, re.Msg)
		}
		return re
	}

	// Three injected measurement mismatches reach session setup and
	// trip the breaker.
	for i := 0; i < 3; i++ {
		re := dialErr()
		if !strings.Contains(re.Msg, "measurement mismatch") {
			t.Fatalf("dial %d: %q, want injected mismatch", i, re.Msg)
		}
	}
	if got := srv.BreakerTrips(); got != 1 {
		t.Fatalf("BreakerTrips()=%d after threshold, want 1", got)
	}
	// The open breaker refuses the cooloff window outright.
	for i := 0; i < 2; i++ {
		re := dialErr()
		if !strings.Contains(re.Msg, "circuit breaker") {
			t.Fatalf("cooloff dial %d: %q, want breaker refusal", i, re.Msg)
		}
	}
	// Half-open trial: the fault budget is spent, so the handshake
	// succeeds and the breaker closes.
	s, err := hixrt.Dial(addr)
	if err != nil {
		t.Fatalf("half-open trial: %v", err)
	}
	if err := runMatrixAdd(s, 8); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := srv.BreakerTrips(); got != 1 {
		t.Fatalf("BreakerTrips()=%d after recovery, want 1", got)
	}
	// Closed again: the next dial is served straight away.
	s2, err := hixrt.Dial(addr)
	if err != nil {
		t.Fatalf("dial after recovery: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConnectionPanicRecovery: a panic inside one connection's
// handling (here: an instrumentation hook) costs that connection only.
// The server keeps serving, and the panicking connection's session is
// torn down, not leaked.
func TestConnectionPanicRecovery(t *testing.T) {
	var mu sync.Mutex
	sessions := 0
	srv, addr := startServer(t, netserve.Config{
		OnSession: func(s *hixrt.Session) {
			mu.Lock()
			defer mu.Unlock()
			sessions++
			if sessions == 1 {
				s.Hooks.AfterDataWrite = func(off, n int) {
					panic("injected hook panic")
				}
			}
		},
	})
	s, err := hixrt.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	ptr, err := s.MemAlloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	// The upload trips the panicking hook server-side; this client's
	// connection dies with a typed transport error.
	err = s.MemcpyHtoD(ptr, make([]byte, 4096), 4096)
	if err == nil {
		t.Fatal("upload succeeded through a panicking handler")
	}
	if !errors.Is(err, hixrt.ErrBroken) && !errors.Is(err, hixrt.ErrServerClosed) {
		t.Fatalf("panic surfaced as %v, want a typed transport error", err)
	}
	waitDrained(t, srv, 5*time.Second)

	// The server survived: a second client is served normally.
	s2, err := hixrt.Dial(addr)
	if err != nil {
		t.Fatalf("server did not survive handler panic: %v", err)
	}
	if err := runMatrixAdd(s2, 12); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentRemoteSessionUse hammers ONE RemoteSession from many
// goroutines (the -race gate for the session mutex): every exchange
// must stay frame-aligned, every round trip byte-correct.
func TestConcurrentRemoteSessionUse(t *testing.T) {
	_, addr := startServer(t, netserve.Config{})
	s, err := hixrt.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, 8<<10)
			for j := range buf {
				buf[j] = byte(i*31 + j)
			}
			out := make([]byte, len(buf))
			for round := 0; round < 6; round++ {
				ptr, err := s.MemAlloc(uint64(len(buf)))
				if err != nil {
					errs[i] = err
					return
				}
				if err := s.MemcpyHtoD(ptr, buf, len(buf)); err != nil {
					errs[i] = err
					return
				}
				if err := s.Launch("nop", [gpu.NumKernelParams]uint64{}); err != nil {
					errs[i] = err
					return
				}
				if err := s.MemcpyDtoH(out, ptr, len(out)); err != nil {
					errs[i] = err
					return
				}
				if !bytes.Equal(out, buf) {
					errs[i] = fmt.Errorf("worker %d round %d: round-trip corruption", i, round)
					return
				}
				if err := s.MemFree(ptr); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
}
