package netserve_test

import (
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/faults"
	"repro/internal/hixrt"
	"repro/internal/machine"
	"repro/internal/netserve"
	"repro/internal/wire"
	"repro/internal/workloads"
)

// TestResumeRoundTrip: a v3 dial gets a ticket, and presenting it on
// the next dial re-arms the session through the zero-DH fast path —
// asserted directly against the process-wide modexp counter.
func TestResumeRoundTrip(t *testing.T) {
	srv, addr := startServer(t, netserve.Config{})

	s1, err := hixrt.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Version() != wire.Version3 {
		t.Fatalf("negotiated version %d, want %d", s1.Version(), wire.Version3)
	}
	if s1.Resumed() {
		t.Fatal("first dial reported Resumed")
	}
	tkt := s1.Ticket()
	if len(tkt) == 0 {
		t.Fatal("v3 Welcome carried no ticket")
	}
	if err := runMatrixAdd(s1, 8); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	before := attest.DHOps()
	s2, err := hixrt.DialConfig(addr, hixrt.RemoteConfig{Ticket: tkt})
	if err != nil {
		t.Fatal(err)
	}
	if got := attest.DHOps() - before; got != 0 {
		t.Fatalf("resumed handshake performed %d big.Int DH operations, want 0", got)
	}
	if !s2.Resumed() {
		t.Fatal("ticketed dial did not resume")
	}
	if s2.SessionID() != s1.SessionID() {
		t.Fatalf("resumed session id %d, want original %d", s2.SessionID(), s1.SessionID())
	}
	if len(s2.Ticket()) == 0 {
		t.Fatal("resumed Welcome carried no replacement ticket")
	}
	// The re-armed key must actually work: drive the encrypted data
	// path end to end.
	if err := runMatrixAdd(s2, 8); err != nil {
		t.Fatalf("workload on resumed session: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	st := srv.ResumeStats()
	if st.Issued < 2 || st.Accepted != 1 || st.Fallbacks != 0 {
		t.Fatalf("resume stats %+v, want >=2 issued, 1 accepted, 0 fallbacks", st)
	}
}

// TestResumeKeyRotation: one rotation keeps outstanding tickets valid
// (previous generation accepted); a second retires them — the client
// transparently falls back to the full handshake.
func TestResumeKeyRotation(t *testing.T) {
	srv, addr := startServer(t, netserve.Config{})

	s1, err := hixrt.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t1 := s1.Ticket()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	if gen := srv.RotateTicketKey(); gen != 2 {
		t.Fatalf("generation after rotate = %d, want 2", gen)
	}
	s2, err := hixrt.DialConfig(addr, hixrt.RemoteConfig{Ticket: t1})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Resumed() {
		t.Fatal("previous-generation ticket refused; rotation must keep gen-1 valid")
	}
	t2 := s2.Ticket()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Two more rotations put t2 (sealed under gen 2) two generations
	// behind: a hard refusal, served as a silent full handshake.
	srv.RotateTicketKey()
	srv.RotateTicketKey()
	if got := srv.TicketGeneration(); got != 4 {
		t.Fatalf("generation = %d, want 4", got)
	}
	s3, err := hixrt.DialConfig(addr, hixrt.RemoteConfig{Ticket: t2})
	if err != nil {
		t.Fatalf("stale ticket must fall back to full handshake, got %v", err)
	}
	if s3.Resumed() {
		t.Fatal("two-generations-stale ticket resumed")
	}
	if err := runMatrixAdd(s3, 8); err != nil {
		t.Fatal(err)
	}
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}

	st := srv.ResumeStats()
	if st.StaleGen != 1 || st.Fallbacks != 1 || st.Accepted != 1 {
		t.Fatalf("resume stats %+v, want 1 stale_gen, 1 fallback, 1 accepted", st)
	}
}

// TestResumeLegacyInterop: v1 and v2 clients negotiate and serve
// exactly as before — no tickets on the wire in either direction.
func TestResumeLegacyInterop(t *testing.T) {
	_, addr := startServer(t, netserve.Config{})
	for _, ver := range []uint16{wire.Version1, wire.Version2} {
		s, err := hixrt.DialConfig(addr, hixrt.RemoteConfig{MaxWireVersion: ver})
		if err != nil {
			t.Fatalf("v%d dial: %v", ver, err)
		}
		if s.Version() != ver {
			t.Fatalf("negotiated %d, want %d", s.Version(), ver)
		}
		if s.Resumed() || len(s.Ticket()) != 0 {
			t.Fatalf("v%d session carries resumption state", ver)
		}
		if err := runMatrixAdd(s, 8); err != nil {
			t.Fatalf("v%d workload: %v", ver, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("v%d close: %v", ver, err)
		}
	}
}

// TestResumeServerVersionCap: a server capped at v2 issues no tickets
// and a ticket-bearing client config degrades cleanly.
func TestResumeServerVersionCap(t *testing.T) {
	_, addr := startServer(t, netserve.Config{MaxWireVersion: wire.Version2})
	s, err := hixrt.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if s.Version() != wire.Version2 || len(s.Ticket()) != 0 {
		t.Fatalf("capped server negotiated v%d with %d-byte ticket, want v2 and none",
			s.Version(), len(s.Ticket()))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestResumeTicketChaos is the fault-plane coverage for the resume
// path: the server drops the connection mid-workload, and the client's
// seeded fault plane corrupts the resumption ticket it presents on the
// redial. The server must refuse the ticket as a typed validation
// failure and serve the full handshake instead — the workload
// completes either way, with the fallback visible in the counters.
func TestResumeTicketChaos(t *testing.T) {
	srvPlane := faults.New("resume-chaos-server", faults.Config{
		Rates:  map[string]float64{faults.NetDrop: 1},
		After:  map[string]int{faults.NetDrop: 3},
		Limits: map[string]int{faults.NetDrop: 1},
	})
	cliPlane := faults.New("resume-chaos-client", faults.Config{
		Rates:  map[string]float64{faults.NetTicket: 1},
		Limits: map[string]int{faults.NetTicket: 1},
	})
	srv, addr := startServer(t, netserve.Config{Faults: srvPlane})
	cfg, _ := fastReconnect()
	cfg.Remote.Faults = cliPlane
	rs, err := hixrt.DialReconnecting(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		wl := workloads.NewMatrixAdd(16)
		if err := wl.Run(workloads.SessionRunner{S: rs}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := wl.Check(); err != nil {
			t.Fatalf("round %d: corrupted result: %v", round, err)
		}
	}
	if got := srvPlane.Fired(faults.NetDrop); got != 1 {
		t.Fatalf("injected %d drops, want 1", got)
	}
	if got := cliPlane.Fired(faults.NetTicket); got != 1 {
		t.Fatalf("injected %d ticket corruptions, want 1", got)
	}
	if got := rs.Reconnects(); got < 1 {
		t.Fatalf("Reconnects()=%d, want >=1", got)
	}
	// The corrupted ticket must not have resumed anything.
	if got := rs.Resumes(); got != 0 {
		t.Fatalf("Resumes()=%d, want 0 (ticket was corrupted)", got)
	}
	st := srv.ResumeStats()
	if st.Fallbacks < 1 || st.Accepted != 0 {
		t.Fatalf("resume stats %+v, want >=1 fallback and 0 accepted", st)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	waitDrained(t, srv, 2*time.Second)
}

// TestResumeAcrossDrop: the production path — a dropped connection,
// a ticketed redial, journal replay on a zero-DH resumed session, and
// a verified readback.
func TestResumeAcrossDrop(t *testing.T) {
	plane := faults.New("resume-drop", faults.Config{
		Rates:  map[string]float64{faults.NetDrop: 1},
		After:  map[string]int{faults.NetDrop: 3},
		Limits: map[string]int{faults.NetDrop: 1},
	})
	srv, addr := startServer(t, netserve.Config{Faults: plane})
	cfg, _ := fastReconnect()
	rs, err := hixrt.DialReconnecting(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := attest.DHOps()
	wl := workloads.NewMatrixAdd(16)
	if err := wl.Run(workloads.SessionRunner{S: rs}); err != nil {
		t.Fatal(err)
	}
	if err := wl.Check(); err != nil {
		t.Fatalf("corrupted result across resumed redial: %v", err)
	}
	if got := rs.Reconnects(); got != 1 {
		t.Fatalf("Reconnects()=%d, want 1", got)
	}
	if got := rs.Resumes(); got != 1 {
		t.Fatalf("Resumes()=%d, want 1 (redial should present the cached ticket)", got)
	}
	if got := attest.DHOps() - before; got != 0 {
		t.Fatalf("resumed redial performed %d big.Int DH operations, want 0", got)
	}
	if st := srv.ResumeStats(); st.Accepted != 1 {
		t.Fatalf("resume stats %+v, want 1 accepted", st)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	waitDrained(t, srv, 2*time.Second)
}

// TestResumePartitionAffinity: the resumed placement lands back on the
// exact partition the ticket names, visible in the placer's counter.
func TestResumePartitionAffinity(t *testing.T) {
	srv, addr := startServer(t, netserve.Config{
		MachineConfig: &machine.Config{Partitions: 2},
	})
	s1, err := hixrt.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	tkt := s1.Ticket()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := hixrt.DialConfig(addr, hixrt.RemoteConfig{Ticket: tkt})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Resumed() {
		t.Fatal("ticketed dial did not resume")
	}
	if got := srv.Placer().PreferHits(); got != 1 {
		t.Fatalf("PreferHits()=%d, want 1 (resume must pin its old partition)", got)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}
