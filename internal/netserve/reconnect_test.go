package netserve_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/hixrt"
	"repro/internal/netserve"
	"repro/internal/workloads"
)

// sleepRecorder is an injectable backoff sleeper that records every
// requested delay without waiting it out, so reconnect tests assert on
// the computed schedule instead of serializing on the wall clock.
type sleepRecorder struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (r *sleepRecorder) sleep(d time.Duration) {
	r.mu.Lock()
	r.delays = append(r.delays, d)
	r.mu.Unlock()
}

func (r *sleepRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.delays)
}

// fastReconnect keeps retry latency test-friendly: backoff delays are
// recorded, not slept.
func fastReconnect() (hixrt.ReconnectConfig, *sleepRecorder) {
	rec := &sleepRecorder{}
	return hixrt.ReconnectConfig{
		Remote:      hixrt.RemoteConfig{DialTimeout: 2 * time.Second, IOTimeout: 5 * time.Second},
		BaseBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		JitterSeed:  "reconnect-test",
		Sleep:       rec.sleep,
	}, rec
}

// TestReconnectAcrossDrops: the server drops the connection on two
// scheduled requests; a ReconnectingSession completes the full
// workload anyway, with zero data corruption and the expected rebuild
// count.
func TestReconnectAcrossDrops(t *testing.T) {
	plane := faults.New("reconnect-drops", faults.Config{
		Rates: map[string]float64{faults.NetDrop: 1},
		// Let a few requests through, then drop twice; replayed
		// requests on the rebuilt connections also advance the call
		// index, so the limit bounds total chaos.
		After:  map[string]int{faults.NetDrop: 3},
		Limits: map[string]int{faults.NetDrop: 2},
	})
	srv, addr := startServer(t, netserve.Config{Faults: plane})
	cfg, _ := fastReconnect()
	rs, err := hixrt.DialReconnecting(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		wl := workloads.NewMatrixAdd(16)
		if err := wl.Run(workloads.SessionRunner{S: rs}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := wl.Check(); err != nil {
			t.Fatalf("round %d: corrupted result: %v", round, err)
		}
	}
	if got := plane.Fired(faults.NetDrop); got != 2 {
		t.Fatalf("injected %d drops, want 2", got)
	}
	if got := rs.Reconnects(); got < 2 {
		t.Fatalf("Reconnects()=%d, want >=2 (one per injected drop)", got)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	waitDrained(t, srv, 2*time.Second)
}

// TestReconnectReplaysState drops the connection surgically between an
// upload and its readback: the rebuilt session must replay the journal
// (alloc + upload) so the readback returns the original bytes.
func TestReconnectReplaysState(t *testing.T) {
	plane := faults.New("reconnect-replay", faults.Config{
		Rates:  map[string]float64{faults.NetDrop: 1},
		After:  map[string]int{faults.NetDrop: 2}, // after alloc + HtoD
		Limits: map[string]int{faults.NetDrop: 1},
	})
	_, addr := startServer(t, netserve.Config{Faults: plane})
	cfg, _ := fastReconnect()
	rs, err := hixrt.DialReconnecting(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	data := make([]byte, 48<<10)
	for i := range data {
		data[i] = byte(i*7 + i>>9)
	}
	ptr, err := rs.MemAlloc(uint64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.MemcpyHtoD(ptr, data, len(data)); err != nil {
		t.Fatal(err)
	}
	// The drop fires as this request arrives; the wrapper redials,
	// replays alloc + upload, and re-issues the readback.
	out := make([]byte, len(data))
	if err := rs.MemcpyDtoH(out, ptr, len(out)); err != nil {
		t.Fatalf("readback across drop: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("replayed state corrupted: readback differs from upload")
	}
	if got := rs.Reconnects(); got != 1 {
		t.Fatalf("Reconnects()=%d, want exactly 1", got)
	}
	if got := plane.Fired(faults.NetDrop); got != 1 {
		t.Fatalf("injected %d drops, want 1", got)
	}
}

// TestReconnectGivesUp: with the server gone for good, the retry loop
// must exhaust its attempts and surface the failure — bounded, typed,
// no spin.
func TestReconnectGivesUp(t *testing.T) {
	srv, err := netserve.New(netserve.Config{
		Kernels:     []*gpu.Kernel{workloads.MatrixAddKernel()},
		ReadTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg, sleeps := fastReconnect()
	cfg.MaxAttempts = 3
	rs, err := hixrt.DialReconnecting(addr.String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	_, err = rs.MemAlloc(4096)
	if err == nil {
		t.Fatal("request succeeded against a dead server")
	}
	if !strings.Contains(err.Error(), "attempts exhausted") {
		t.Fatalf("exhaustion not surfaced: %v", err)
	}
	// MaxAttempts=3: the first attempt fails in flight, the two redial
	// attempts each back off through the injected sleeper — and nowhere
	// else, so the test never waits out a real backoff.
	if got := sleeps.count(); got != 2 {
		t.Fatalf("recorded %d backoff sleeps, want 2", got)
	}
	sleeps.mu.Lock()
	for i, d := range sleeps.delays {
		if d <= 0 || d > 20*time.Millisecond {
			t.Fatalf("backoff %d = %v, want in (0, MaxBackoff]", i, d)
		}
	}
	sleeps.mu.Unlock()
}

// TestReconnectNonRetryable: request-level refusals pass straight
// through — no redial, the session stays usable.
func TestReconnectNonRetryable(t *testing.T) {
	_, addr := startServer(t, netserve.Config{})
	cfg, _ := fastReconnect()
	rs, err := hixrt.DialReconnecting(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if err := rs.Launch("no_such_kernel", [gpu.NumKernelParams]uint64{}); !errors.Is(err, hixrt.ErrRequest) {
		t.Fatalf("unknown kernel: %v, want ErrRequest", err)
	}
	if got := rs.Reconnects(); got != 0 {
		t.Fatalf("Reconnects()=%d after a request refusal, want 0", got)
	}
	wl := workloads.NewMatrixAdd(12)
	if err := wl.Run(workloads.SessionRunner{S: rs}); err != nil {
		t.Fatal(err)
	}
	if err := wl.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestReconnectSurvivesTagCorruption: substrate tampering with one
// transfer's OCB tag surfaces server-side as an auth failure; the
// wrapper rebuilds and re-issues the whole transfer, which then
// succeeds — data integrity end to end, zero corruption.
func TestReconnectSurvivesTagCorruption(t *testing.T) {
	plane := faults.New("reconnect-tag", faults.Config{
		Rates:  map[string]float64{faults.GPUTagCorrupt: 1},
		After:  map[string]int{faults.GPUTagCorrupt: 1},
		Limits: map[string]int{faults.GPUTagCorrupt: 1},
	})
	_, addr := startServer(t, netserve.Config{Faults: plane})
	cfg, _ := fastReconnect()
	rs, err := hixrt.DialReconnecting(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	data := make([]byte, 96<<10)
	for i := range data {
		data[i] = byte(i * 13)
	}
	ptr, err := rs.MemAlloc(uint64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	// The second sealed chunk of this upload gets its tag flipped in
	// the shared segment; the GPU enclave rejects it, the wrapper
	// rebuilds and re-uploads.
	if err := rs.MemcpyHtoD(ptr, data, len(data)); err != nil {
		t.Fatalf("upload across tag corruption: %v", err)
	}
	out := make([]byte, len(data))
	if err := rs.MemcpyDtoH(out, ptr, len(out)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("tag corruption leaked into plaintext")
	}
	if got := plane.Fired(faults.GPUTagCorrupt); got != 1 {
		t.Fatalf("injected %d tag corruptions, want 1", got)
	}
	if got := rs.Reconnects(); got != 1 {
		t.Fatalf("Reconnects()=%d, want 1", got)
	}
}
