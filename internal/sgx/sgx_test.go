package sgx

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/attest"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/pcie"
)

// fixture assembles a machine: DRAM, EPC, PCIe fabric with one GPU-like
// endpoint, MMU, and the SGX+HIX processor.
type fixture struct {
	t    *testing.T
	as   *mem.AddressSpace
	mmu  *mmu.MMU
	rc   *pcie.RootComplex
	proc *Processor
	gpu  *pcie.Endpoint
	bdf  pcie.BDF
	bar0 mem.PhysAddr
}

type ramBar struct{ data []byte }

func (h *ramBar) MMIORead(off uint64, p []byte) error  { copy(p, h.data[off:]); return nil }
func (h *ramBar) MMIOWrite(off uint64, p []byte) error { copy(h.data[off:], p); return nil }

func newFixture(t *testing.T) *fixture {
	t.Helper()
	as := mem.NewAddressSpace()
	if _, err := as.AddDRAM("ram", 0, 32<<20); err != nil {
		t.Fatal(err)
	}
	rc, err := pcie.NewRootComplex(as, 0x8000_0000, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	port, err := rc.AddRootPort("rp0")
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := pcie.NewEndpoint("gpu0", pcie.ConfigOpts{
		VendorID: 0x10DE, DeviceID: 0x1080, ClassCode: 0x030000,
		BARSizes: [pcie.NumBARs]uint64{0: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := gpu.SetBARHandler(0, &ramBar{data: make([]byte, 1<<20)}); err != nil {
		t.Fatal(err)
	}
	port.AttachEndpoint(gpu)
	if err := rc.Enumerate(); err != nil {
		t.Fatal(err)
	}
	var bdf pcie.BDF
	for b, d := range rc.Endpoints() {
		if d == pcie.Device(gpu) {
			bdf = b
		}
	}
	m := mmu.New()
	proc, err := NewProcessor(Config{
		Platform: attest.NewPlatformFromSeed([]byte("test-platform")),
		MMU:      m,
		Memory:   as,
		EPCBase:  0x400_0000, // 64 MiB, clear of the 32 MiB DRAM region
		EPCSize:  4 << 20,
		Fabric:   rc,
	})
	if err != nil {
		t.Fatal(err)
	}
	bar0, _, _ := gpu.Config().BAR(0)
	return &fixture{t: t, as: as, mmu: m, rc: rc, proc: proc, gpu: gpu, bdf: bdf, bar0: bar0}
}

// buildEnclave creates, populates and initializes an enclave mapped into
// pt.
func (f *fixture) buildEnclave(pid int, pt *mmu.PageTable, code []byte) (*Enclave, *Token) {
	f.t.Helper()
	const elBase = 0x10_0000
	e, err := f.proc.ECreate(pid, elBase, 16*mem.PageSize)
	if err != nil {
		f.t.Fatal(err)
	}
	frame, err := f.proc.EAdd(e.ID(), elBase, code)
	if err != nil {
		f.t.Fatal(err)
	}
	pt.Map(elBase, mmu.PTE{Frame: frame, Writable: true, User: true})
	if err := f.proc.EInit(e.ID()); err != nil {
		f.t.Fatal(err)
	}
	tok, err := f.proc.EEnter(e.ID(), pt)
	if err != nil {
		f.t.Fatal(err)
	}
	return e, tok
}

func TestEnclaveLifecycleValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := f.proc.ECreate(1, 0x1001, mem.PageSize); err == nil {
		t.Fatal("unaligned ELRANGE base accepted")
	}
	if _, err := f.proc.ECreate(1, 0x1000, 100); err == nil {
		t.Fatal("unaligned ELRANGE size accepted")
	}
	e, err := f.proc.ECreate(1, 0x10000, 4*mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// EADD outside ELRANGE.
	if _, err := f.proc.EAdd(e.ID(), 0x50000, nil); !errors.Is(err, ErrELRANGE) {
		t.Fatalf("EADD outside ELRANGE: %v", err)
	}
	// Oversized content.
	if _, err := f.proc.EAdd(e.ID(), 0x10000, make([]byte, mem.PageSize+1)); err == nil {
		t.Fatal("oversized EADD accepted")
	}
	if _, err := f.proc.EAdd(e.ID(), 0x10000, []byte("code")); err != nil {
		t.Fatal(err)
	}
	// Duplicate page.
	if _, err := f.proc.EAdd(e.ID(), 0x10008, []byte("x")); !errors.Is(err, ErrAlreadyMapped) {
		t.Fatalf("duplicate EADD: %v", err)
	}
	// Enter before init.
	if _, err := f.proc.EEnter(e.ID(), mmu.NewPageTable()); !errors.Is(err, ErrEnclaveState) {
		t.Fatalf("EENTER before EINIT: %v", err)
	}
	if err := f.proc.EInit(e.ID()); err != nil {
		t.Fatal(err)
	}
	if err := f.proc.EInit(e.ID()); !errors.Is(err, ErrEnclaveState) {
		t.Fatalf("double EINIT: %v", err)
	}
	if _, err := f.proc.EAdd(e.ID(), 0x11000, nil); !errors.Is(err, ErrEnclaveState) {
		t.Fatalf("EADD after EINIT: %v", err)
	}
	if _, err := f.proc.EEnter(999, mmu.NewPageTable()); !errors.Is(err, ErrNoEnclave) {
		t.Fatalf("EENTER missing enclave: %v", err)
	}
}

func TestMeasurementReflectsContents(t *testing.T) {
	f := newFixture(t)
	pt := mmu.NewPageTable()
	e1, _ := f.buildEnclave(1, pt, []byte("driver v1"))
	f2 := newFixture(t)
	pt2 := mmu.NewPageTable()
	e2, _ := f2.buildEnclave(1, pt2, []byte("driver v1"))
	if e1.Measurement() != e2.Measurement() {
		t.Fatal("identical enclaves measured differently")
	}
	f3 := newFixture(t)
	e3, _ := f3.buildEnclave(1, mmu.NewPageTable(), []byte("driver v2"))
	if e1.Measurement() == e3.Measurement() {
		t.Fatal("different code, same measurement")
	}
	if e1.Measurement().IsZero() {
		t.Fatal("zero measurement")
	}
}

func TestEnclaveMemoryRoundtripAndMEE(t *testing.T) {
	f := newFixture(t)
	pt := mmu.NewPageTable()
	_, tok := f.buildEnclave(1, pt, []byte("initial page content"))

	secret := []byte("the model weights live here")
	if err := f.proc.Write(tok, 0x10_0040, secret); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(secret))
	if err := f.proc.Read(tok, 0x10_0040, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("enclave readback = %q", got)
	}
	// EADDed content is readable too.
	head := make([]byte, 20)
	if err := f.proc.Read(tok, 0x10_0000, head); err != nil {
		t.Fatal(err)
	}
	if string(head) != "initial page content" {
		t.Fatalf("initial content = %q", head)
	}

	// The adversary reading raw DRAM sees only MEE ciphertext.
	pte, _ := pt.Lookup(0x10_0000)
	raw := make([]byte, mem.PageSize)
	if err := f.as.Read(pte.Frame, raw); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, secret) || bytes.Contains(raw, []byte("initial page")) {
		t.Fatal("plaintext visible in DRAM — MEE not applied")
	}
}

func TestOSCannotAccessEPCThroughMMU(t *testing.T) {
	f := newFixture(t)
	pt := mmu.NewPageTable()
	_, _ = f.buildEnclave(1, pt, []byte("secret"))
	// The OS uses the same page table mapping but runs outside the
	// enclave: the walker must refuse the fill.
	err := f.proc.ReadAsOS(1, pt, 0x10_0000, make([]byte, 4))
	if !errors.Is(err, mmu.ErrDenied) {
		t.Fatalf("OS access to EPC: %v", err)
	}
	// Mapping the EPC frame at a different VA in another process also
	// fails (EPCM va check).
	pte, _ := pt.Lookup(0x10_0000)
	evil := mmu.NewPageTable()
	evil.Map(0x77_0000, mmu.PTE{Frame: pte.Frame, Writable: true})
	err = f.proc.ReadAsOS(2, evil, 0x77_0000, make([]byte, 4))
	if !errors.Is(err, mmu.ErrDenied) {
		t.Fatalf("aliased EPC access: %v", err)
	}
}

func TestELRANGESpliceDetected(t *testing.T) {
	f := newFixture(t)
	pt := mmu.NewPageTable()
	_, tok := f.buildEnclave(1, pt, []byte("code"))
	// The OS splices ordinary DRAM into the enclave's protected range.
	pt.Map(0x10_1000, mmu.PTE{Frame: 0x5000, Writable: true})
	err := f.proc.Read(tok, 0x10_1000, make([]byte, 4))
	if !errors.Is(err, mmu.ErrDenied) {
		t.Fatalf("ELRANGE splice: %v", err)
	}
}

func TestEKillInvalidatesAndScrubs(t *testing.T) {
	f := newFixture(t)
	pt := mmu.NewPageTable()
	e, tok := f.buildEnclave(1, pt, []byte("sensitive"))
	pte, _ := pt.Lookup(0x10_0000)
	if err := f.proc.EKill(e.ID()); err != nil {
		t.Fatal(err)
	}
	if err := f.proc.Read(tok, 0x10_0000, make([]byte, 4)); !errors.Is(err, ErrBadToken) {
		t.Fatalf("token after kill: %v", err)
	}
	// Frame scrubbed in DRAM.
	raw := make([]byte, 16)
	if err := f.as.Read(pte.Frame, raw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, make([]byte, 16)) {
		t.Fatal("EPC frame not scrubbed on reclaim")
	}
	if err := f.proc.EKill(e.ID() + 100); !errors.Is(err, ErrNoEnclave) {
		t.Fatalf("kill missing enclave: %v", err)
	}
}

func TestLocalAttestationBetweenEnclaves(t *testing.T) {
	f := newFixture(t)
	ptA, ptB := mmu.NewPageTable(), mmu.NewPageTable()
	_, tokA := f.buildEnclave(1, ptA, []byte("user enclave"))
	const elB = 0x40_0000
	eB, err := f.proc.ECreate(2, elB, 4*mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := f.proc.EAdd(eB.ID(), elB, []byte("gpu enclave"))
	if err != nil {
		t.Fatal(err)
	}
	ptB.Map(elB, mmu.PTE{Frame: frame, Writable: true})
	if err := f.proc.EInit(eB.ID()); err != nil {
		t.Fatal(err)
	}
	tokB, err := f.proc.EEnter(eB.ID(), ptB)
	if err != nil {
		t.Fatal(err)
	}

	// A reports to B.
	r, err := f.proc.EReport(tokA, eB.Measurement(), []byte("hello B"))
	if err != nil {
		t.Fatal(err)
	}
	okB, err := f.proc.EVerifyReport(tokB, r)
	if err != nil || !okB {
		t.Fatalf("B verify = %v, %v", okB, err)
	}
	// A cannot verify a report targeted at B.
	okA, err := f.proc.EVerifyReport(tokA, r)
	if err != nil || okA {
		t.Fatalf("A verified B's report: %v, %v", okA, err)
	}
}

// gpuEnclave builds an initialized enclave that owns the fixture's GPU.
func (f *fixture) gpuEnclave(pid int) (*Enclave, *Token, *mmu.PageTable) {
	f.t.Helper()
	pt := mmu.NewPageTable()
	e, tok := f.buildEnclave(pid, pt, []byte("gpu enclave driver"))
	if err := f.proc.EGCreate(tok, f.bdf); err != nil {
		f.t.Fatal(err)
	}
	return e, tok, pt
}

func TestEGCreateChecks(t *testing.T) {
	f := newFixture(t)
	_, tok, _ := f.gpuEnclave(1)
	// Lockdown engaged.
	if !f.rc.LockdownActive() {
		t.Fatal("EGCREATE did not engage lockdown")
	}
	// Same enclave cannot own a second GPU (and the GPU is taken).
	if err := f.proc.EGCreate(tok, f.bdf); !errors.Is(err, ErrGPUOwned) && !errors.Is(err, ErrHasGPU) {
		t.Fatalf("double EGCREATE: %v", err)
	}
	// A different enclave cannot claim the same GPU.
	pt2 := mmu.NewPageTable()
	_, tok2 := f.buildEnclave(2, pt2, []byte("second gpu enclave"))
	if err := f.proc.EGCreate(tok2, f.bdf); !errors.Is(err, ErrGPUOwned) {
		t.Fatalf("steal EGCREATE: %v", err)
	}
	// Emulated (non-enumerated) device is rejected.
	if err := f.proc.EGCreate(tok2, pcie.BDF{Bus: 0x42}); !errors.Is(err, ErrNotHardware) {
		t.Fatalf("emulated GPU: %v", err)
	}
}

func TestEGAddAndMMIOAccess(t *testing.T) {
	f := newFixture(t)
	e, tok, pt := f.gpuEnclave(1)
	const mmioVA = 0x7000_0000
	// Register and map the first MMIO page.
	if err := f.proc.EGAdd(tok, mmioVA, f.bar0); err != nil {
		t.Fatal(err)
	}
	pt.Map(mmioVA, mmu.PTE{Frame: f.bar0, Writable: true})

	// The GPU enclave can now write device registers through the MMU.
	if err := f.proc.Write(tok, mmioVA+0x10, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1)
	if err := f.proc.Read(tok, mmioVA+0x10, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB {
		t.Fatalf("MMIO readback = %#x", got[0])
	}

	// EGADD validation: PA outside the GPU's MMIO.
	if err := f.proc.EGAdd(tok, mmioVA+0x1000, 0x5000); !errors.Is(err, ErrNotMMIO) {
		t.Fatalf("EGADD to DRAM: %v", err)
	}
	// Duplicate VA registration.
	if err := f.proc.EGAdd(tok, mmioVA, f.bar0+0x1000); !errors.Is(err, ErrTGMRConflict) {
		t.Fatalf("duplicate EGADD: %v", err)
	}
	// Non-GPU-enclave cannot EGADD.
	pt2 := mmu.NewPageTable()
	_, tok2 := f.buildEnclave(2, pt2, []byte("other"))
	if err := f.proc.EGAdd(tok2, mmioVA, f.bar0); !errors.Is(err, ErrNoGPUEnclave) {
		t.Fatalf("EGADD without GECS: %v", err)
	}
	_ = e
}

func TestOSBlockedFromProtectedMMIO(t *testing.T) {
	f := newFixture(t)
	_, _, _ = f.gpuEnclave(1)
	// Before EGCREATE the OS could touch the BAR; now the walker denies.
	osPT := mmu.NewPageTable()
	osPT.Map(0x9000_0000, mmu.PTE{Frame: f.bar0, Writable: true})
	err := f.proc.WriteAsOS(3, osPT, 0x9000_0000, []byte{1})
	if !errors.Is(err, mmu.ErrDenied) {
		t.Fatalf("OS MMIO write: %v", err)
	}
}

func TestOSCanTouchMMIOBeforeEGCreate(t *testing.T) {
	f := newFixture(t)
	osPT := mmu.NewPageTable()
	osPT.Map(0x9000_0000, mmu.PTE{Frame: f.bar0, Writable: true})
	if err := f.proc.WriteAsOS(3, osPT, 0x9000_0000, []byte{1}); err != nil {
		t.Fatalf("baseline OS MMIO access should work: %v", err)
	}
}

func TestPTETamperOnMMIODetected(t *testing.T) {
	f := newFixture(t)
	_, tok, pt := f.gpuEnclave(1)
	const mmioVA = 0x7000_0000
	if err := f.proc.EGAdd(tok, mmioVA, f.bar0); err != nil {
		t.Fatal(err)
	}
	pt.Map(mmioVA, mmu.PTE{Frame: f.bar0, Writable: true})
	if err := f.proc.Write(tok, mmioVA, []byte{1}); err != nil {
		t.Fatal(err)
	}
	// Attack 1: redirect the registered VA to attacker DRAM.
	pt.Map(mmioVA, mmu.PTE{Frame: 0x6000, Writable: true})
	if err := f.proc.Write(tok, mmioVA, []byte{2}); err == nil {
		t.Fatal("PTE redirect to DRAM not detected")
	}
	// Attack 2: redirect to a different (unregistered) MMIO page.
	pt.Map(mmioVA, mmu.PTE{Frame: f.bar0 + 0x2000, Writable: true})
	if err := f.proc.Write(tok, mmioVA, []byte{3}); !errors.Is(err, mmu.ErrDenied) {
		t.Fatalf("PTE redirect within MMIO: %v", err)
	}
	// Attack 3: map an unregistered VA to the MMIO page.
	pt.Map(0x7100_0000, mmu.PTE{Frame: f.bar0, Writable: true})
	if err := f.proc.Write(tok, 0x7100_0000, []byte{4}); !errors.Is(err, mmu.ErrDenied) {
		t.Fatalf("unregistered VA fill: %v", err)
	}
}

func TestTerminationProtection(t *testing.T) {
	f := newFixture(t)
	e, tok, pt := f.gpuEnclave(1)
	const mmioVA = 0x7000_0000
	if err := f.proc.EGAdd(tok, mmioVA, f.bar0); err != nil {
		t.Fatal(err)
	}
	pt.Map(mmioVA, mmu.PTE{Frame: f.bar0, Writable: true})

	// The OS kills the GPU enclave (§4.2.3).
	if err := f.proc.EKill(e.ID()); err != nil {
		t.Fatal(err)
	}
	// The GPU remains owned: a fresh enclave cannot claim it...
	pt2 := mmu.NewPageTable()
	_, tok2 := f.buildEnclave(2, pt2, []byte("usurper"))
	if err := f.proc.EGCreate(tok2, f.bdf); !errors.Is(err, ErrGPUOwned) {
		t.Fatalf("usurper EGCREATE: %v", err)
	}
	// ...and nobody can reach the MMIO.
	osPT := mmu.NewPageTable()
	osPT.Map(0x9000_0000, mmu.PTE{Frame: f.bar0, Writable: true})
	if err := f.proc.ReadAsOS(3, osPT, 0x9000_0000, make([]byte, 4)); !errors.Is(err, mmu.ErrDenied) {
		t.Fatalf("sealed GPU access: %v", err)
	}
	// Cold boot recovers the platform.
	f.proc.ColdBoot()
	f.rc.ColdBoot()
	pt3 := mmu.NewPageTable()
	_, tok3 := f.buildEnclave(4, pt3, []byte("fresh gpu enclave"))
	if err := f.proc.EGCreate(tok3, f.bdf); err != nil {
		t.Fatalf("EGCREATE after cold boot: %v", err)
	}
}

func TestGracefulTermination(t *testing.T) {
	f := newFixture(t)
	_, tok, _ := f.gpuEnclave(1)
	if err := f.proc.EGDestroy(tok); err != nil {
		t.Fatal(err)
	}
	if f.rc.LockdownActive() {
		t.Fatal("lockdown persists after graceful termination")
	}
	// The OS can use the GPU again, unprotected.
	osPT := mmu.NewPageTable()
	osPT.Map(0x9000_0000, mmu.PTE{Frame: f.bar0, Writable: true})
	if err := f.proc.WriteAsOS(3, osPT, 0x9000_0000, []byte{1}); err != nil {
		t.Fatalf("OS access after EGDESTROY: %v", err)
	}
	// A new GPU enclave can be created.
	pt2 := mmu.NewPageTable()
	_, tok2 := f.buildEnclave(2, pt2, []byte("next gpu enclave"))
	if err := f.proc.EGCreate(tok2, f.bdf); err != nil {
		t.Fatal(err)
	}
	// EGDestroy by a non-GPU enclave fails.
	pt3 := mmu.NewPageTable()
	_, tok3 := f.buildEnclave(5, pt3, []byte("bystander"))
	if err := f.proc.EGDestroy(tok3); !errors.Is(err, ErrNoGPUEnclave) {
		t.Fatalf("bystander EGDESTROY: %v", err)
	}
}

func TestGPUOwnershipQueries(t *testing.T) {
	f := newFixture(t)
	e, _, _ := f.gpuEnclave(1)
	bdf, ok := f.proc.GPUOf(e.ID())
	if !ok || bdf != f.bdf {
		t.Fatalf("GPUOf = %v, %v", bdf, ok)
	}
	owner, ok := f.proc.GPUOwner(f.bdf)
	if !ok || owner != e.ID() {
		t.Fatalf("GPUOwner = %d, %v", owner, ok)
	}
	if _, ok := f.proc.GPUOf(999); ok {
		t.Fatal("GPUOf on non-GPU enclave")
	}
	if _, ok := f.proc.Enclave(e.ID()); !ok {
		t.Fatal("Enclave lookup failed")
	}
}

func TestTokenForgeryImpossibleAcrossProcessors(t *testing.T) {
	f1 := newFixture(t)
	f2 := newFixture(t)
	pt := mmu.NewPageTable()
	_, tok1 := f1.buildEnclave(1, pt, []byte("x"))
	// A token from one processor is rejected by another.
	if err := f2.proc.Read(tok1, 0x10_0000, make([]byte, 1)); !errors.Is(err, ErrBadToken) {
		t.Fatalf("cross-processor token: %v", err)
	}
	var nilTok *Token
	if err := f1.proc.Read(nilTok, 0, make([]byte, 1)); !errors.Is(err, ErrBadToken) {
		t.Fatalf("nil token: %v", err)
	}
}

func TestProcessorConfigValidation(t *testing.T) {
	as := mem.NewAddressSpace()
	m := mmu.New()
	pl := attest.NewPlatformFromSeed([]byte("x"))
	if _, err := NewProcessor(Config{MMU: m, Memory: as}); err == nil {
		t.Fatal("missing platform accepted")
	}
	if _, err := NewProcessor(Config{Platform: pl, MMU: m, Memory: as, EPCBase: 1, EPCSize: mem.PageSize}); err == nil {
		t.Fatal("unaligned EPC accepted")
	}
	if _, err := NewProcessor(Config{Platform: pl, MMU: m, Memory: as, EPCBase: 0, EPCSize: 0}); err == nil {
		t.Fatal("zero EPC accepted")
	}
}

func TestEPCExhaustion(t *testing.T) {
	f := newFixture(t)
	e, err := f.proc.ECreate(1, 0x100_0000, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 2000; i++ {
		_, lastErr = f.proc.EAdd(e.ID(), mmu.VirtAddr(0x100_0000+i*mem.PageSize), nil)
		if lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrEPCExhausted) {
		t.Fatalf("expected EPC exhaustion, got %v", lastErr)
	}
}
