package sgx

import (
	"errors"
	"fmt"

	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/pcie"
)

// HIX extension errors.
var (
	ErrNoFabric     = errors.New("sgx: no PCIe fabric attached")
	ErrNotHardware  = errors.New("sgx: BDF is not an enumerated hardware device (emulated GPU rejected)")
	ErrGPUOwned     = errors.New("sgx: GPU already registered to a GPU enclave")
	ErrHasGPU       = errors.New("sgx: enclave already owns a GPU")
	ErrNoGPUEnclave = errors.New("sgx: enclave is not a GPU enclave")
	ErrNotMMIO      = errors.New("sgx: physical address outside the GPU's MMIO ranges")
	ErrTGMRConflict = errors.New("sgx: TGMR entry already present for this address")
)

// MMIORange is one protected window of the owned GPU.
type MMIORange struct {
	Base mem.PhysAddr
	Size uint64
	Name string
}

func (r MMIORange) contains(pa mem.PhysAddr) bool {
	return pa >= r.Base && pa < r.Base+mem.PhysAddr(r.Size)
}

// GECS is the GPU enclave control structure (§4.2.1): the hidden,
// EPC-resident record binding a GPU enclave to its hardware GPU. It
// persists even after the owning enclave dies — that persistence is the
// termination protection of §4.2.3.
type GECS struct {
	EnclaveID uint64
	GPU       pcie.BDF
	Ranges    []MMIORange
	// OwnerDead records that the owning enclave was forcefully killed;
	// the GPU then stays unreachable until platform cold boot.
	OwnerDead bool
}

// EGCreate is the EGCREATE instruction (§4.2.1): it binds the calling
// enclave to the hardware GPU at bdf, snapshots the GPU's MMIO ranges
// into GECS, and engages the PCIe MMIO lockdown (§4.3.2).
//
// Hardware checks enforced here:
//   - the BDF must be a real enumerated endpoint (GPU-emulation defense),
//   - the GPU must not be registered to any GPU enclave — alive or dead,
//   - the enclave may own at most one GPU.
func (p *Processor) EGCreate(t *Token, bdf pcie.BDF) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, err := p.checkToken(t)
	if err != nil {
		return err
	}
	if p.fabric == nil {
		return ErrNoFabric
	}
	dev, ok := p.fabric.Endpoint(bdf)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotHardware, bdf)
	}
	if owner, taken := p.gpuOwners[bdf]; taken {
		return fmt.Errorf("%w: %s owned by enclave %d", ErrGPUOwned, bdf, owner)
	}
	if _, has := p.gecs[e.id]; has {
		return ErrHasGPU
	}
	cfg := dev.Config()
	var ranges []MMIORange
	for i := 0; i < pcie.NumBARs; i++ {
		base, size, err := cfg.BAR(i)
		if err != nil || size == 0 || base == 0 {
			continue
		}
		ranges = append(ranges, MMIORange{Base: base, Size: size, Name: fmt.Sprintf("bar%d", i)})
	}
	if base, size, enabled := cfg.ROMBAR(); enabled && size != 0 {
		ranges = append(ranges, MMIORange{Base: base, Size: size, Name: "rom"})
	}
	if len(ranges) == 0 {
		return fmt.Errorf("%w: device has no MMIO ranges", ErrNotMMIO)
	}
	if err := p.fabric.Lockdown(bdf); err != nil {
		return err
	}
	p.gecs[e.id] = &GECS{EnclaveID: e.id, GPU: bdf, Ranges: ranges}
	p.gpuOwners[bdf] = e.id
	p.tgmr[e.id] = make(map[mmu.VirtAddr]mem.PhysAddr)
	p.mmuUnit.FlushAll()
	return nil
}

// EGAdd is the EGADD instruction (§4.2.1): it registers one page of the
// GPU enclave's virtual address space as mapping to one page of the
// owned GPU's MMIO, recording the pair in the TGMR table. The walker
// admits MMIO translations only when they match a TGMR entry.
func (p *Processor) EGAdd(t *Token, va mmu.VirtAddr, pa mem.PhysAddr) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, err := p.checkToken(t)
	if err != nil {
		return err
	}
	g, ok := p.gecs[e.id]
	if !ok {
		return ErrNoGPUEnclave
	}
	vaPage, paPage := mmu.PageAlign(va), mem.PageAlign(pa)
	inRange := false
	for _, r := range g.Ranges {
		if r.contains(paPage) {
			inRange = true
			break
		}
	}
	if !inRange {
		return fmt.Errorf("%w: %#x", ErrNotMMIO, pa)
	}
	table := p.tgmr[e.id]
	if _, dup := table[vaPage]; dup {
		return fmt.Errorf("%w: va %#x", ErrTGMRConflict, va)
	}
	table[vaPage] = paPage
	return nil
}

// GPUOf returns the GPU the enclave owns.
func (p *Processor) GPUOf(eid uint64) (pcie.BDF, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.gecs[eid]
	if !ok {
		return pcie.BDF{}, false
	}
	return g.GPU, true
}

// GPUOwner returns the enclave owning a GPU, if any.
func (p *Processor) GPUOwner(bdf pcie.BDF) (uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	eid, ok := p.gpuOwners[bdf]
	return eid, ok
}

// EGDestroy is the graceful-termination path (§4.2.3): invoked *by the
// GPU enclave itself* (token-authenticated), it clears GECS and TGMR and
// returns the GPU to the OS, releasing the MMIO lockdown.
func (p *Processor) EGDestroy(t *Token) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, err := p.checkToken(t)
	if err != nil {
		return err
	}
	g, ok := p.gecs[e.id]
	if !ok {
		return ErrNoGPUEnclave
	}
	delete(p.gecs, e.id)
	delete(p.tgmr, e.id)
	delete(p.gpuOwners, g.GPU)
	if p.fabric != nil {
		p.fabric.ReleaseLockdown(g.GPU)
	}
	p.mmuUnit.FlushAll()
	return nil
}

// NoteEnclaveDeath is called by EKill's HIX half: a killed GPU enclave
// leaves its GECS/TGMR registration in place (so the GPU stays owned and
// unreachable) but marks the owner dead.
func (p *Processor) noteEnclaveDeathLocked(eid uint64) {
	if g, ok := p.gecs[eid]; ok {
		g.OwnerDead = true
	}
}

// ColdBoot models a platform power cycle for the SGX/HIX state: every
// enclave dies, the EPC is scrubbed, and — critically for §4.2.3 — the
// GECS and TGMR registrations are cleared so the GPU becomes usable
// again.
func (p *Processor) ColdBoot() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.enclaves {
		e.state = stateDead
		e.gen++
	}
	p.enclaves = make(map[uint64]*Enclave)
	p.epcm = make(map[mem.PhysAddr]epcmEntry)
	// Scrub and rebuild the EPC allocator.
	alloc, err := mem.NewFrameAllocator(p.epcBase, p.epcSize)
	if err == nil {
		p.epcAlloc = alloc
	}
	zero := make([]byte, p.epcSize)
	_ = p.memory.Write(p.epcBase, zero)
	p.gecs = make(map[uint64]*GECS)
	p.gpuOwners = make(map[pcie.BDF]uint64)
	p.tgmr = make(map[uint64]map[mmu.VirtAddr]mem.PhysAddr)
	p.mmuUnit.FlushAll()
}

// protectedRangeOf returns the GECS protecting pa, if any.
func (p *Processor) protectedRangeOf(pa mem.PhysAddr) (*GECS, bool) {
	for _, g := range p.gecs {
		for _, r := range g.Ranges {
			if r.contains(pa) {
				return g, true
			}
		}
	}
	return nil, false
}

// ValidateFill implements mmu.FillValidator: the combined EPCM (§2.1) and
// HIX GECS/TGMR (§4.3.1) checks the hardware page-table walker runs
// before admitting a translation into the TLB.
func (p *Processor) ValidateFill(ctx mmu.Context, va mmu.VirtAddr, pa mem.PhysAddr, write bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()

	// EPC pages: only the owning enclave, at the registered VA.
	if p.InEPC(pa) {
		ent, ok := p.epcm[mem.PageAlign(pa)]
		if !ok {
			return fmt.Errorf("%w: unallocated EPC page %#x", ErrAccessDenied, pa)
		}
		if ctx.EnclaveID != ent.enclave {
			return fmt.Errorf("%w: EPC page %#x belongs to enclave %d", ErrAccessDenied, pa, ent.enclave)
		}
		if mmu.PageAlign(va) != ent.va {
			return fmt.Errorf("%w: EPC page %#x mapped at wrong va %#x", ErrAccessDenied, pa, va)
		}
		return nil
	}

	// ELRANGE integrity: an enclave's protected virtual range must map
	// to its own EPC pages — the OS cannot splice ordinary memory in.
	if ctx.EnclaveID != 0 {
		if e, ok := p.enclaves[ctx.EnclaveID]; ok {
			if uint64(va) >= uint64(e.elBase) && uint64(va) < uint64(e.elBase)+e.elSize {
				return fmt.Errorf("%w: ELRANGE va %#x mapped outside EPC", ErrAccessDenied, va)
			}
		}
	}

	// HIX rule (§4.3.1), VA side: a virtual page the GPU enclave
	// registered in TGMR must translate to exactly its registered MMIO
	// page — redirecting it to attacker-controlled memory is denied.
	if ctx.EnclaveID != 0 {
		if table, ok := p.tgmr[ctx.EnclaveID]; ok {
			if reg, registered := table[mmu.PageAlign(va)]; registered && reg != mem.PageAlign(pa) {
				return fmt.Errorf("%w: TGMR va %#x redirected to %#x (registered %#x)",
					ErrAccessDenied, va, pa, reg)
			}
		}
	}

	// HIX rule (§4.3.1): translations into a protected GPU MMIO range
	// are admitted only for the owning, living GPU enclave, and only
	// when both VA and PA match the TGMR registration.
	if g, prot := p.protectedRangeOf(pa); prot {
		if g.OwnerDead {
			return fmt.Errorf("%w: GPU %s is sealed after enclave termination", ErrAccessDenied, g.GPU)
		}
		if ctx.EnclaveID != g.EnclaveID {
			return fmt.Errorf("%w: GPU MMIO %#x owned by enclave %d", ErrAccessDenied, pa, g.EnclaveID)
		}
		table := p.tgmr[g.EnclaveID]
		registered, ok := table[mmu.PageAlign(va)]
		if !ok {
			return fmt.Errorf("%w: va %#x not registered in TGMR", ErrAccessDenied, va)
		}
		if registered != mem.PageAlign(pa) {
			return fmt.Errorf("%w: TGMR mismatch va %#x -> %#x (registered %#x)",
				ErrAccessDenied, va, pa, registered)
		}
	}
	return nil
}
