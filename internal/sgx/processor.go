// Package sgx models an SGX-capable processor and the HIX extensions to
// it. The baseline model provides enclaves with measured launch, an
// enclave page cache (EPC) whose pages are access-controlled through the
// page-table walker (EPCM) and encrypted in DRAM (MEE), local attestation
// (EREPORT/EGETKEY), and enclave entry tokens.
//
// The HIX extensions (paper §4.2–§4.3) live in hix.go: the EGCREATE and
// EGADD instructions, the GECS and TGMR hidden data structures, the
// MMIO-access validation in the walker, and the GPU-ownership persistence
// that protects data after a forced GPU-enclave termination.
package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/attest"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/pcie"
)

// SGX model errors.
var (
	ErrNoEnclave     = errors.New("sgx: no such enclave")
	ErrEnclaveState  = errors.New("sgx: operation invalid in this enclave state")
	ErrEPCExhausted  = errors.New("sgx: EPC exhausted")
	ErrBadToken      = errors.New("sgx: invalid or stale execution token")
	ErrAccessDenied  = errors.New("sgx: access denied")
	ErrNotOwner      = errors.New("sgx: caller does not own this resource")
	ErrELRANGE       = errors.New("sgx: address outside ELRANGE")
	ErrAlreadyMapped = errors.New("sgx: page already added")
)

// Config wires a processor into the simulated machine.
type Config struct {
	Platform *attest.Platform
	MMU      *mmu.MMU
	Memory   *mem.AddressSpace
	// EPC placement in physical memory. The region is added to the
	// address map by NewProcessor.
	EPCBase mem.PhysAddr
	EPCSize uint64
	// Fabric gives the HIX instructions access to the trusted PCIe root
	// complex (device inventory, lockdown, routing measurement).
	Fabric *pcie.RootComplex
}

type epcmEntry struct {
	enclave uint64
	va      mmu.VirtAddr
}

type enclaveState int

const (
	stateBuilding enclaveState = iota
	stateInitialized
	stateDead
)

// Enclave is the SECS-equivalent: per-enclave control state.
type Enclave struct {
	id      uint64
	pid     int
	elBase  mmu.VirtAddr
	elSize  uint64
	state   enclaveState
	gen     uint64 // bumped on death to invalidate tokens
	mrHash  []byte // running measurement while building
	measure attest.Measurement
	pages   map[mmu.VirtAddr]mem.PhysAddr
}

// ID returns the hardware enclave identifier.
func (e *Enclave) ID() uint64 { return e.id }

// Measurement returns MRENCLAVE; valid after EInit.
func (e *Enclave) Measurement() attest.Measurement { return e.measure }

// Processor is the SGX+HIX capable CPU package (the hardware root of
// trust, Axiom #1).
type Processor struct {
	mu       sync.Mutex
	platform *attest.Platform
	mmuUnit  *mmu.MMU
	memory   *mem.AddressSpace
	fabric   *pcie.RootComplex

	epcBase  mem.PhysAddr
	epcSize  uint64
	epcAlloc *mem.FrameAllocator
	epcm     map[mem.PhysAddr]epcmEntry
	mee      cipher.Block // memory encryption engine key schedule

	enclaves map[uint64]*Enclave
	nextID   uint64

	// HIX state (hix.go).
	gecs      map[uint64]*GECS
	gpuOwners map[pcie.BDF]uint64
	tgmr      map[uint64]map[mmu.VirtAddr]mem.PhysAddr
}

// NewProcessor builds the CPU, maps the EPC into physical memory, and
// hooks the EPCM/TGMR checks into the MMU's walker.
func NewProcessor(cfg Config) (*Processor, error) {
	if cfg.Platform == nil || cfg.MMU == nil || cfg.Memory == nil {
		return nil, errors.New("sgx: incomplete config")
	}
	if cfg.EPCSize == 0 || cfg.EPCSize%mem.PageSize != 0 || mem.PageOffset(cfg.EPCBase) != 0 {
		return nil, fmt.Errorf("sgx: EPC %#x+%#x not page aligned", cfg.EPCBase, cfg.EPCSize)
	}
	if _, err := cfg.Memory.AddDRAM("epc", cfg.EPCBase, cfg.EPCSize); err != nil {
		return nil, err
	}
	alloc, err := mem.NewFrameAllocator(cfg.EPCBase, cfg.EPCSize)
	if err != nil {
		return nil, err
	}
	var key [16]byte
	if _, err := rand.Read(key[:]); err != nil {
		return nil, fmt.Errorf("sgx: %w", err)
	}
	blk, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	p := &Processor{
		platform:  cfg.Platform,
		mmuUnit:   cfg.MMU,
		memory:    cfg.Memory,
		fabric:    cfg.Fabric,
		epcBase:   cfg.EPCBase,
		epcSize:   cfg.EPCSize,
		epcAlloc:  alloc,
		epcm:      make(map[mem.PhysAddr]epcmEntry),
		mee:       blk,
		enclaves:  make(map[uint64]*Enclave),
		gecs:      make(map[uint64]*GECS),
		gpuOwners: make(map[pcie.BDF]uint64),
		tgmr:      make(map[uint64]map[mmu.VirtAddr]mem.PhysAddr),
	}
	cfg.MMU.AddValidator(p)
	return p, nil
}

// InEPC reports whether pa falls inside the enclave page cache.
func (p *Processor) InEPC(pa mem.PhysAddr) bool {
	return pa >= p.epcBase && pa < p.epcBase+mem.PhysAddr(p.epcSize)
}

// --- Enclave lifecycle ---------------------------------------------------

// ECreate starts building an enclave for process pid with the given
// ELRANGE.
func (p *Processor) ECreate(pid int, elBase mmu.VirtAddr, elSize uint64) (*Enclave, error) {
	if elSize == 0 || elSize%mem.PageSize != 0 || mmu.PageOffset(elBase) != 0 {
		return nil, fmt.Errorf("sgx: ELRANGE %#x+%#x not page aligned", elBase, elSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextID++
	e := &Enclave{
		id:     p.nextID,
		pid:    pid,
		elBase: elBase,
		elSize: elSize,
		pages:  make(map[mmu.VirtAddr]mem.PhysAddr),
	}
	h := sha256.New()
	h.Write([]byte("ecreate"))
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(elBase))
	binary.LittleEndian.PutUint64(hdr[8:], elSize)
	h.Write(hdr[:])
	e.mrHash = h.Sum(nil)
	p.enclaves[e.id] = e
	return e, nil
}

// EAdd adds one page of content to a building enclave: it allocates an
// EPC frame, extends the measurement, stores the (encrypted) content, and
// records the EPCM entry. The returned frame is what the OS must map at
// va in the process page table.
func (p *Processor) EAdd(eid uint64, va mmu.VirtAddr, content []byte) (mem.PhysAddr, error) {
	if len(content) > mem.PageSize {
		return 0, fmt.Errorf("sgx: EADD content %d exceeds page size", len(content))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.enclaves[eid]
	if !ok {
		return 0, ErrNoEnclave
	}
	if e.state != stateBuilding {
		return 0, fmt.Errorf("%w: EADD after EINIT", ErrEnclaveState)
	}
	page := mmu.PageAlign(va)
	if uint64(page) < uint64(e.elBase) || uint64(page)+mem.PageSize > uint64(e.elBase)+e.elSize {
		return 0, fmt.Errorf("%w: va %#x", ErrELRANGE, va)
	}
	if _, dup := e.pages[page]; dup {
		return 0, fmt.Errorf("%w: va %#x", ErrAlreadyMapped, va)
	}
	frame, err := p.epcAlloc.Alloc()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrEPCExhausted, err)
	}
	// Extend measurement over (va, content).
	h := sha256.New()
	h.Write(e.mrHash)
	var vab [8]byte
	binary.LittleEndian.PutUint64(vab[:], uint64(page))
	h.Write(vab[:])
	h.Write(content)
	e.mrHash = h.Sum(nil)

	// Store the page through the MEE: DRAM holds ciphertext.
	buf := make([]byte, mem.PageSize)
	copy(buf, content)
	p.meeXor(frame, buf)
	if err := p.memory.Write(frame, buf); err != nil {
		p.epcAlloc.Free(frame)
		return 0, err
	}
	e.pages[page] = frame
	p.epcm[frame] = epcmEntry{enclave: eid, va: page}
	return frame, nil
}

// EInit finalizes the enclave: the measurement freezes and the enclave
// becomes enterable.
func (p *Processor) EInit(eid uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.enclaves[eid]
	if !ok {
		return ErrNoEnclave
	}
	if e.state != stateBuilding {
		return fmt.Errorf("%w: double EINIT", ErrEnclaveState)
	}
	copy(e.measure[:], e.mrHash)
	e.state = stateInitialized
	return nil
}

// Token is an opaque proof of execution inside an enclave, returned by
// EEnter. Only code holding a valid token can touch enclave memory or
// issue enclave-authority instructions — the software analogue of "the
// CPU is currently running this enclave". Tokens are unforgeable outside
// this package.
type Token struct {
	p   *Processor
	eid uint64
	gen uint64
	pt  *mmu.PageTable
	pid int
}

// EnclaveID identifies the enclave this token executes.
func (t *Token) EnclaveID() uint64 { return t.eid }

// Context returns the hardware execution context for MMU checks.
func (t *Token) Context() mmu.Context { return mmu.Context{PID: t.pid, EnclaveID: t.eid} }

// EEnter enters an initialized enclave. pt is the process page table the
// hardware will walk (CR3 is under OS control; the walker's validation is
// what keeps that safe).
func (p *Processor) EEnter(eid uint64, pt *mmu.PageTable) (*Token, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.enclaves[eid]
	if !ok {
		return nil, ErrNoEnclave
	}
	if e.state != stateInitialized {
		return nil, fmt.Errorf("%w: enclave not enterable", ErrEnclaveState)
	}
	return &Token{p: p, eid: eid, gen: e.gen, pt: pt, pid: e.pid}, nil
}

func (p *Processor) checkToken(t *Token) (*Enclave, error) {
	if t == nil || t.p != p {
		return nil, ErrBadToken
	}
	e, ok := p.enclaves[t.eid]
	if !ok || e.state != stateInitialized || e.gen != t.gen {
		return nil, ErrBadToken
	}
	return e, nil
}

// EKill models the OS forcefully destroying an enclave (§4.2.3): EPC
// pages are reclaimed and tokens invalidated — but note that HIX GPU
// ownership in GECS/TGMR deliberately survives; see hix.go.
func (p *Processor) EKill(eid uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.enclaves[eid]
	if !ok {
		return ErrNoEnclave
	}
	e.state = stateDead
	e.gen++
	p.noteEnclaveDeathLocked(eid)
	for _, frame := range e.pages {
		delete(p.epcm, frame)
		// Hardware scrubs reclaimed EPC frames.
		zero := make([]byte, mem.PageSize)
		_ = p.memory.Write(frame, zero)
		p.epcAlloc.Free(frame)
	}
	e.pages = make(map[mmu.VirtAddr]mem.PhysAddr)
	p.mmuUnit.FlushAll()
	return nil
}

// --- Enclave memory access (EPC + MEE) ----------------------------------

// meeXor applies the memory encryption engine keystream for the page at
// frame to buf in place (AES-CTR with a physical-address tweak).
func (p *Processor) meeXor(frame mem.PhysAddr, buf []byte) {
	var iv [16]byte
	binary.LittleEndian.PutUint64(iv[:8], uint64(frame))
	stream := cipher.NewCTR(p.mee, iv[:])
	stream.XORKeyStream(buf, buf)
}

// access translates va through the MMU (walker validation included) and
// performs the read/write, applying the MEE when the target is EPC.
func (p *Processor) access(ctx mmu.Context, pt *mmu.PageTable, va mmu.VirtAddr, buf []byte, write bool) error {
	if len(buf) == 0 {
		return nil
	}
	// Split at page boundaries: each page may map anywhere.
	off := 0
	for off < len(buf) {
		cur := va + mmu.VirtAddr(off)
		n := int(mem.PageSize - mmu.PageOffset(cur))
		if n > len(buf)-off {
			n = len(buf) - off
		}
		pa, err := p.mmuUnit.Translate(ctx, pt, cur, write)
		if err != nil {
			return err
		}
		chunk := buf[off : off+n]
		if p.InEPC(pa) {
			frame := mem.PageAlign(pa)
			pageBuf := make([]byte, mem.PageSize)
			if err := p.memory.Read(frame, pageBuf); err != nil {
				return err
			}
			p.meeXor(frame, pageBuf)
			if write {
				copy(pageBuf[mem.PageOffset(pa):], chunk)
				p.meeXor(frame, pageBuf)
				if err := p.memory.Write(frame, pageBuf); err != nil {
					return err
				}
			} else {
				copy(chunk, pageBuf[mem.PageOffset(pa):])
			}
		} else {
			if write {
				if err := p.memory.Write(pa, chunk); err != nil {
					return err
				}
			} else {
				if err := p.memory.Read(pa, chunk); err != nil {
					return err
				}
			}
		}
		off += n
	}
	return nil
}

// Read performs an enclave-mode memory read through the MMU.
func (p *Processor) Read(t *Token, va mmu.VirtAddr, buf []byte) error {
	p.mu.Lock()
	_, err := p.checkToken(t)
	p.mu.Unlock()
	if err != nil {
		return err
	}
	return p.access(t.Context(), t.pt, va, buf, false)
}

// Write performs an enclave-mode memory write through the MMU.
func (p *Processor) Write(t *Token, va mmu.VirtAddr, buf []byte) error {
	p.mu.Lock()
	_, err := p.checkToken(t)
	p.mu.Unlock()
	if err != nil {
		return err
	}
	return p.access(t.Context(), t.pt, va, buf, true)
}

// ReadAsOS performs a non-enclave (ring-0 or user, EnclaveID 0) access —
// the adversary's view through the MMU.
func (p *Processor) ReadAsOS(pid int, pt *mmu.PageTable, va mmu.VirtAddr, buf []byte) error {
	return p.access(mmu.Context{PID: pid}, pt, va, buf, false)
}

// WriteAsOS is the non-enclave write counterpart.
func (p *Processor) WriteAsOS(pid int, pt *mmu.PageTable, va mmu.VirtAddr, buf []byte) error {
	return p.access(mmu.Context{PID: pid}, pt, va, buf, true)
}

// --- Local attestation ---------------------------------------------------

// EReport creates a local attestation report from the token's enclave to
// the target measurement.
func (p *Processor) EReport(t *Token, target attest.Measurement, data []byte) (attest.Report, error) {
	p.mu.Lock()
	e, err := p.checkToken(t)
	p.mu.Unlock()
	if err != nil {
		return attest.Report{}, err
	}
	return p.platform.CreateReport(e.measure, target, data)
}

// EVerifyReport lets the token's enclave verify a report targeted at it
// (the EGETKEY + MAC-check flow).
func (p *Processor) EVerifyReport(t *Token, r attest.Report) (bool, error) {
	p.mu.Lock()
	e, err := p.checkToken(t)
	p.mu.Unlock()
	if err != nil {
		return false, err
	}
	return p.platform.VerifyReport(e.measure, r), nil
}

// Enclave returns enclave metadata by ID.
func (p *Processor) Enclave(eid uint64) (*Enclave, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.enclaves[eid]
	return e, ok
}
