// Package osim models the untrusted operating system of the HIX threat
// model (§3.1): it owns the page tables, physical frame allocation, the
// IOMMU, and the inter-process communication media (shared memory and
// message queues) that enclaves must treat as hostile.
//
// Everything in this package is deliberately adversary-accessible. The
// attack harness exercises exactly these doors: reading any physical
// frame, rewriting any PTE, remapping the IOMMU, snooping and tampering
// with message queues. HIX's guarantees must hold anyway.
package osim

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/pcie"
)

// OS errors.
var (
	ErrNoProcess  = errors.New("osim: no such process")
	ErrNoSegment  = errors.New("osim: no such shared segment")
	ErrNoQueue    = errors.New("osim: no such message queue")
	ErrQueueEmpty = errors.New("osim: message queue empty")
)

// Process is one OS process: an address space plus a simple VA allocator.
type Process struct {
	PID int
	PT  *mmu.PageTable

	mu       sync.Mutex
	heapNext mmu.VirtAddr
}

// reserveVA carves a page-aligned virtual range out of the process heap.
func (p *Process) reserveVA(size uint64) mmu.VirtAddr {
	p.mu.Lock()
	defer p.mu.Unlock()
	va := p.heapNext
	pages := (size + mem.PageSize - 1) / mem.PageSize
	p.heapNext += mmu.VirtAddr(pages * mem.PageSize)
	return va
}

// SharedSegment is a System-V-style shared memory segment: a run of
// physical frames mappable into multiple processes. It is ordinary DRAM —
// fully visible to the adversary — which is why HIX only ever places
// ciphertext here (§4.4.1).
type SharedSegment struct {
	ID     int
	Frames []mem.PhysAddr
	Size   uint64
}

// MessageQueue is an OS-mediated queue of byte messages. The adversary
// can observe, reorder, drop, and inject (see Snoop/Inject).
type MessageQueue struct {
	mu   sync.Mutex
	msgs [][]byte
}

// OS is the kernel of the simulated machine.
type OS struct {
	mu        sync.Mutex
	as        *mem.AddressSpace
	frames    *mem.FrameAllocator
	processes map[int]*Process
	nextPID   int
	segments  map[int]*SharedSegment
	nextSeg   int
	queues    map[int]*MessageQueue
	nextQueue int
	iommu     *IOMMU
}

// Config describes the kernel's resources.
type Config struct {
	Memory *mem.AddressSpace
	// FrameBase/FrameSize is the DRAM window the kernel allocates user
	// frames from (must not overlap the EPC).
	FrameBase mem.PhysAddr
	FrameSize uint64
}

// New boots the OS.
func New(cfg Config) (*OS, error) {
	if cfg.Memory == nil {
		return nil, errors.New("osim: nil memory")
	}
	fa, err := mem.NewFrameAllocator(cfg.FrameBase, cfg.FrameSize)
	if err != nil {
		return nil, err
	}
	return &OS{
		as:        cfg.Memory,
		frames:    fa,
		processes: make(map[int]*Process),
		segments:  make(map[int]*SharedSegment),
		queues:    make(map[int]*MessageQueue),
		iommu:     NewIOMMU(),
	}, nil
}

// Memory exposes the physical address space — the adversary's direct
// physical view (and the kernel's own).
func (o *OS) Memory() *mem.AddressSpace { return o.as }

// IOMMU returns the DMA translation unit the kernel programs.
func (o *OS) IOMMU() *IOMMU { return o.iommu }

// NewProcess creates a process with an empty page table.
func (o *OS) NewProcess() *Process {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.nextPID++
	p := &Process{PID: o.nextPID, PT: mmu.NewPageTable(), heapNext: 0x1000_0000}
	o.processes[p.PID] = p
	return p
}

// Process looks up a process by PID.
func (o *OS) Process(pid int) (*Process, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	p, ok := o.processes[pid]
	return p, ok
}

// AllocPages maps n fresh frames into the process and returns the base
// virtual address.
func (o *OS) AllocPages(p *Process, n int) (mmu.VirtAddr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("osim: invalid page count %d", n)
	}
	va := p.reserveVA(uint64(n) * mem.PageSize)
	for i := 0; i < n; i++ {
		frame, err := o.frames.Alloc()
		if err != nil {
			return 0, err
		}
		p.PT.Map(va+mmu.VirtAddr(i*mem.PageSize), mmu.PTE{Frame: frame, Writable: true, User: true})
	}
	return va, nil
}

// MapPhys maps an arbitrary physical range (page-aligned) into the
// process — the "benign kernel service" of §4.2 that assigns virtual
// addresses for MMIO regions. The kernel can of course also abuse this to
// point a process anywhere; the MMU walker is what constrains the damage.
func (o *OS) MapPhys(p *Process, pa mem.PhysAddr, size uint64, writable bool) (mmu.VirtAddr, error) {
	if mem.PageOffset(pa) != 0 {
		return 0, fmt.Errorf("osim: unaligned physical base %#x", pa)
	}
	va := p.reserveVA(size)
	pages := (size + mem.PageSize - 1) / mem.PageSize
	for i := uint64(0); i < pages; i++ {
		p.PT.Map(va+mmu.VirtAddr(i*mem.PageSize),
			mmu.PTE{Frame: pa + mem.PhysAddr(i*mem.PageSize), Writable: writable, User: true})
	}
	return va, nil
}

// --- Shared memory -------------------------------------------------------

// ShmCreate allocates a shared segment of at least size bytes. Segments
// are physically contiguous: they are DMA targets, and the engines
// address them as one physical base + offset (scatter-gather is out of
// scope for the simulator).
func (o *OS) ShmCreate(size uint64) (*SharedSegment, error) {
	if size == 0 {
		return nil, errors.New("osim: zero-size segment")
	}
	pages := int((size + mem.PageSize - 1) / mem.PageSize)
	base, err := o.frames.AllocContig(pages)
	if err != nil {
		return nil, err
	}
	seg := &SharedSegment{Size: uint64(pages) * mem.PageSize}
	for i := 0; i < pages; i++ {
		seg.Frames = append(seg.Frames, base+mem.PhysAddr(uint64(i)*mem.PageSize))
	}
	o.mu.Lock()
	o.nextSeg++
	seg.ID = o.nextSeg
	o.segments[seg.ID] = seg
	o.mu.Unlock()
	return seg, nil
}

// ShmDestroy removes a segment and returns its frames to the kernel
// allocator. Processes still mapping the segment keep their stale
// mappings (System V semantics); callers must stop using attached VAs
// first. Destroying an unknown or already-destroyed segment is a no-op,
// so teardown paths may call it unconditionally. Without this, a
// serving stack that opens a session per connection exhausts DRAM: each
// session's segment held its frames forever.
func (o *OS) ShmDestroy(seg *SharedSegment) {
	if seg == nil {
		return
	}
	o.mu.Lock()
	if _, ok := o.segments[seg.ID]; !ok {
		o.mu.Unlock()
		return
	}
	delete(o.segments, seg.ID)
	o.mu.Unlock()
	for _, f := range seg.Frames {
		o.frames.Free(f)
	}
	seg.Frames = nil
}

// FreeFrames reports how many user frames remain allocatable
// (diagnostics).
func (o *OS) FreeFrames() int { return o.frames.FreeFrames() }

// Segment looks up a shared segment.
func (o *OS) Segment(id int) (*SharedSegment, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	s, ok := o.segments[id]
	return s, ok
}

// ShmAttach maps a segment into the process and returns its base VA.
func (o *OS) ShmAttach(p *Process, seg *SharedSegment) mmu.VirtAddr {
	va := p.reserveVA(seg.Size)
	for i, frame := range seg.Frames {
		p.PT.Map(va+mmu.VirtAddr(i*mem.PageSize), mmu.PTE{Frame: frame, Writable: true, User: true})
	}
	return va
}

// ShmReadPhys reads the segment contents through physical memory — the
// adversary's (and DMA engine's) view, no MMU involved.
func (o *OS) ShmReadPhys(seg *SharedSegment, off int, buf []byte) error {
	return o.shmAccess(seg, off, buf, false)
}

// ShmWritePhys writes segment contents through physical memory.
func (o *OS) ShmWritePhys(seg *SharedSegment, off int, buf []byte) error {
	return o.shmAccess(seg, off, buf, true)
}

func (o *OS) shmAccess(seg *SharedSegment, off int, buf []byte, write bool) error {
	if off < 0 || uint64(off)+uint64(len(buf)) > seg.Size {
		return fmt.Errorf("osim: segment access out of range (%d+%d of %d)", off, len(buf), seg.Size)
	}
	done := 0
	for done < len(buf) {
		page := (off + done) / mem.PageSize
		pageOff := (off + done) % mem.PageSize
		n := mem.PageSize - pageOff
		if n > len(buf)-done {
			n = len(buf) - done
		}
		pa := seg.Frames[page] + mem.PhysAddr(pageOff)
		var err error
		if write {
			err = o.as.Write(pa, buf[done:done+n])
		} else {
			err = o.as.Read(pa, buf[done:done+n])
		}
		if err != nil {
			return err
		}
		done += n
	}
	return nil
}

// PhysAt returns the physical address corresponding to a byte offset in
// the segment — what the kernel hands to a device as a DMA target.
func (seg *SharedSegment) PhysAt(off int) (mem.PhysAddr, error) {
	if off < 0 || uint64(off) >= seg.Size {
		return 0, fmt.Errorf("osim: offset %d out of segment", off)
	}
	return seg.Frames[off/mem.PageSize] + mem.PhysAddr(off%mem.PageSize), nil
}

// ContiguousPhys reports whether [off, off+n) is physically contiguous —
// DMA descriptors in this simulation cover one contiguous run.
func (seg *SharedSegment) ContiguousPhys(off, n int) bool {
	if n <= 0 {
		return true
	}
	first := off / mem.PageSize
	last := (off + n - 1) / mem.PageSize
	for p := first; p < last; p++ {
		if seg.Frames[p+1] != seg.Frames[p]+mem.PageSize {
			return false
		}
	}
	return true
}

// --- Message queues ------------------------------------------------------

// MQCreate allocates a message queue and returns its ID.
func (o *OS) MQCreate() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.nextQueue++
	o.queues[o.nextQueue] = &MessageQueue{}
	return o.nextQueue
}

func (o *OS) queue(id int) (*MessageQueue, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	q, ok := o.queues[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoQueue, id)
	}
	return q, nil
}

// MQSend appends a message (copied) to the queue.
func (o *OS) MQSend(id int, msg []byte) error {
	q, err := o.queue(id)
	if err != nil {
		return err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.msgs = append(q.msgs, append([]byte(nil), msg...))
	return nil
}

// MQRecv pops the oldest message; ErrQueueEmpty when none is pending.
func (o *OS) MQRecv(id int) ([]byte, error) {
	q, err := o.queue(id)
	if err != nil {
		return nil, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.msgs) == 0 {
		return nil, ErrQueueEmpty
	}
	m := q.msgs[0]
	q.msgs = q.msgs[1:]
	return m, nil
}

// MQDrain pops every pending message in one queue-lock acquisition — the
// batched wakeup the GPU enclave's serving engine uses: one MQ syscall
// per epoch instead of one per request. Returns nil (not ErrQueueEmpty)
// when the queue is empty.
func (o *OS) MQDrain(id int) ([][]byte, error) {
	q, err := o.queue(id)
	if err != nil {
		return nil, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.msgs) == 0 {
		return nil, nil
	}
	out := q.msgs
	q.msgs = nil
	return out, nil
}

// MQSnoop returns a copy of all pending messages without consuming them —
// the adversary reading kernel memory.
func (o *OS) MQSnoop(id int) ([][]byte, error) {
	q, err := o.queue(id)
	if err != nil {
		return nil, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([][]byte, len(q.msgs))
	for i, m := range q.msgs {
		out[i] = append([]byte(nil), m...)
	}
	return out, nil
}

// MQTamper replaces the i-th pending message — the adversary rewriting
// kernel memory.
func (o *OS) MQTamper(id, i int, msg []byte) error {
	q, err := o.queue(id)
	if err != nil {
		return err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if i < 0 || i >= len(q.msgs) {
		return fmt.Errorf("osim: no pending message %d", i)
	}
	q.msgs[i] = append([]byte(nil), msg...)
	return nil
}

// MQLen reports the number of pending messages.
func (o *OS) MQLen(id int) (int, error) {
	q, err := o.queue(id)
	if err != nil {
		return 0, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.msgs), nil
}

// --- IOMMU ---------------------------------------------------------------

// IOMMU is a table-walked DMA remapper, fully under kernel control — and
// therefore under adversary control (§4.3.3: "the OS can route the DMA
// data to any memory pages ... by compromising the IOMMU page table").
type IOMMU struct {
	mu      sync.RWMutex
	enabled bool
	tables  map[pcie.BDF]map[mem.PhysAddr]mem.PhysAddr
}

// NewIOMMU creates a disabled (identity) IOMMU.
func NewIOMMU() *IOMMU {
	return &IOMMU{tables: make(map[pcie.BDF]map[mem.PhysAddr]mem.PhysAddr)}
}

// Enable turns translation on; devices without mappings then fault.
func (u *IOMMU) Enable(on bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.enabled = on
}

// MapDMA installs iova -> pa for one page.
func (u *IOMMU) MapDMA(dev pcie.BDF, iova, pa mem.PhysAddr) {
	u.mu.Lock()
	defer u.mu.Unlock()
	t, ok := u.tables[dev]
	if !ok {
		t = make(map[mem.PhysAddr]mem.PhysAddr)
		u.tables[dev] = t
	}
	t[mem.PageAlign(iova)] = mem.PageAlign(pa)
}

// Translate implements pcie.IOMMU.
func (u *IOMMU) Translate(dev pcie.BDF, iova mem.PhysAddr) (mem.PhysAddr, error) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	if !u.enabled {
		return iova, nil
	}
	t, ok := u.tables[dev]
	if !ok {
		return 0, fmt.Errorf("osim: IOMMU fault: no table for %s", dev)
	}
	pa, ok := t[mem.PageAlign(iova)]
	if !ok {
		return 0, fmt.Errorf("osim: IOMMU fault: %s iova %#x", dev, iova)
	}
	return pa + mem.PhysAddr(mem.PageOffset(iova)), nil
}
