package osim

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/mem"
	"repro/internal/pcie"
)

func newOS(t *testing.T) (*OS, *mem.AddressSpace) {
	t.Helper()
	as := mem.NewAddressSpace()
	if _, err := as.AddDRAM("ram", 0, 16<<20); err != nil {
		t.Fatal(err)
	}
	o, err := New(Config{Memory: as, FrameBase: 0x10_0000, FrameSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return o, as
}

func TestProcessCreationAndAlloc(t *testing.T) {
	o, _ := newOS(t)
	p := o.NewProcess()
	if p.PID == 0 {
		t.Fatal("zero PID")
	}
	if got, ok := o.Process(p.PID); !ok || got != p {
		t.Fatal("process lookup failed")
	}
	va, err := o.AllocPages(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.PT.Len() != 3 {
		t.Fatalf("mapped pages = %d", p.PT.Len())
	}
	// Distinct allocations get distinct VAs.
	va2, err := o.AllocPages(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if va2 == va {
		t.Fatal("VA reuse")
	}
	if _, err := o.AllocPages(p, 0); err == nil {
		t.Fatal("zero alloc accepted")
	}
}

func TestShmDestroyRecyclesFrames(t *testing.T) {
	o, _ := newOS(t)
	// The frame window holds 8 MiB; churning 4 MiB segments 16 times
	// moves 64 MiB through it, which only works if destroy returns
	// frames to the allocator.
	for i := 0; i < 16; i++ {
		seg, err := o.ShmCreate(4 << 20)
		if err != nil {
			t.Fatalf("churn %d: %v", i, err)
		}
		// Recycled segments must stay physically contiguous: the DMA
		// engines address them as base + offset.
		for j, f := range seg.Frames {
			if f != seg.Frames[0]+mem.PhysAddr(uint64(j)*mem.PageSize) {
				t.Fatalf("churn %d: frame %d at %#x breaks contiguity (base %#x)", i, j, f, seg.Frames[0])
			}
		}
		o.ShmDestroy(seg)
	}
	if free := o.FreeFrames(); free != int(8<<20)/mem.PageSize {
		t.Fatalf("FreeFrames = %d after full churn, want the whole window", free)
	}
	// Destroyed segments disappear from lookup; double-destroy and nil
	// are no-ops.
	seg, err := o.ShmCreate(mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	o.ShmDestroy(seg)
	if _, ok := o.Segment(seg.ID); ok {
		t.Fatal("destroyed segment still resolvable")
	}
	o.ShmDestroy(seg)
	o.ShmDestroy(nil)
}

func TestMapPhys(t *testing.T) {
	o, _ := newOS(t)
	p := o.NewProcess()
	va, err := o.MapPhys(p, 0x8000_0000, 2*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	pte, ok := p.PT.Lookup(va + mem.PageSize)
	if !ok || pte.Frame != 0x8000_1000 {
		t.Fatalf("second page maps to %#x", pte.Frame)
	}
	if _, err := o.MapPhys(p, 0x8000_0001, mem.PageSize, true); err == nil {
		t.Fatal("unaligned MapPhys accepted")
	}
}

func TestSharedSegment(t *testing.T) {
	o, _ := newOS(t)
	seg, err := o.ShmCreate(3 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := o.Segment(seg.ID); !ok || got != seg {
		t.Fatal("segment lookup failed")
	}
	msg := []byte("ciphertext blob spanning pages")
	// Write crossing a page boundary.
	off := mem.PageSize - 10
	if err := o.ShmWritePhys(seg, off, msg); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, len(msg))
	if err := o.ShmReadPhys(seg, off, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, msg) {
		t.Fatalf("readback = %q", back)
	}
	// Out-of-range access rejected.
	if err := o.ShmReadPhys(seg, int(seg.Size)-1, make([]byte, 2)); err == nil {
		t.Fatal("oob segment read accepted")
	}
	if _, err := o.ShmCreate(0); err == nil {
		t.Fatal("zero segment accepted")
	}
	// PhysAt round-trips with the frame layout.
	pa, err := seg.PhysAt(mem.PageSize + 5)
	if err != nil {
		t.Fatal(err)
	}
	if pa != seg.Frames[1]+5 {
		t.Fatalf("PhysAt = %#x", pa)
	}
	if _, err := seg.PhysAt(int(seg.Size)); err == nil {
		t.Fatal("oob PhysAt accepted")
	}
}

func TestSegmentContiguity(t *testing.T) {
	o, _ := newOS(t)
	// A fresh allocator hands out consecutive frames, so the first
	// segment is contiguous.
	seg, err := o.ShmCreate(4 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !seg.ContiguousPhys(0, int(seg.Size)) {
		t.Fatal("fresh segment not contiguous")
	}
	if !seg.ContiguousPhys(100, 0) {
		t.Fatal("empty range not contiguous")
	}
	// Force fragmentation: free frames out of order via a second
	// segment is hard here; instead fabricate a fragmented segment.
	frag := &SharedSegment{Size: 2 * mem.PageSize,
		Frames: []mem.PhysAddr{seg.Frames[0], seg.Frames[2]}}
	if frag.ContiguousPhys(0, 2*mem.PageSize) {
		t.Fatal("fragmented segment reported contiguous")
	}
}

func TestShmAttachSharesFrames(t *testing.T) {
	o, _ := newOS(t)
	p1, p2 := o.NewProcess(), o.NewProcess()
	seg, _ := o.ShmCreate(mem.PageSize)
	va1 := o.ShmAttach(p1, seg)
	va2 := o.ShmAttach(p2, seg)
	e1, _ := p1.PT.Lookup(va1)
	e2, _ := p2.PT.Lookup(va2)
	if e1.Frame != e2.Frame {
		t.Fatal("attach mapped different frames")
	}
}

func TestMessageQueue(t *testing.T) {
	o, _ := newOS(t)
	id := o.MQCreate()
	if err := o.MQSend(id, []byte("m1")); err != nil {
		t.Fatal(err)
	}
	if err := o.MQSend(id, []byte("m2")); err != nil {
		t.Fatal(err)
	}
	if n, _ := o.MQLen(id); n != 2 {
		t.Fatalf("len = %d", n)
	}
	// Adversary snoops without consuming.
	msgs, err := o.MQSnoop(id)
	if err != nil || len(msgs) != 2 || string(msgs[0]) != "m1" {
		t.Fatalf("snoop = %q, %v", msgs, err)
	}
	// Adversary tampers in place.
	if err := o.MQTamper(id, 1, []byte("evil")); err != nil {
		t.Fatal(err)
	}
	m, err := o.MQRecv(id)
	if err != nil || string(m) != "m1" {
		t.Fatalf("recv1 = %q, %v", m, err)
	}
	m, _ = o.MQRecv(id)
	if string(m) != "evil" {
		t.Fatalf("tampered recv = %q", m)
	}
	if _, err := o.MQRecv(id); !errors.Is(err, ErrQueueEmpty) {
		t.Fatalf("empty recv: %v", err)
	}
	if err := o.MQTamper(id, 0, nil); err == nil {
		t.Fatal("tamper on empty accepted")
	}
	if _, err := o.MQRecv(999); !errors.Is(err, ErrNoQueue) {
		t.Fatalf("missing queue: %v", err)
	}
}

func TestIOMMU(t *testing.T) {
	u := NewIOMMU()
	dev := pcie.BDF{Bus: 1}
	// Disabled: identity.
	pa, err := u.Translate(dev, 0x1234)
	if err != nil || pa != 0x1234 {
		t.Fatalf("identity = %#x, %v", pa, err)
	}
	u.Enable(true)
	// No table: fault.
	if _, err := u.Translate(dev, 0x1234); err == nil {
		t.Fatal("missing table did not fault")
	}
	u.MapDMA(dev, 0x1000, 0x20000)
	pa, err = u.Translate(dev, 0x1234)
	if err != nil || pa != 0x20234 {
		t.Fatalf("mapped = %#x, %v", pa, err)
	}
	// Unmapped page in an existing table: fault.
	if _, err := u.Translate(dev, 0x9000); err == nil {
		t.Fatal("unmapped iova did not fault")
	}
	// Another device has its own table.
	if _, err := u.Translate(pcie.BDF{Bus: 2}, 0x1000); err == nil {
		t.Fatal("cross-device table leak")
	}
}

func TestMessyConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil memory accepted")
	}
	as := mem.NewAddressSpace()
	if _, err := New(Config{Memory: as, FrameBase: 1, FrameSize: mem.PageSize}); err == nil {
		t.Fatal("unaligned frame window accepted")
	}
}
