package osim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestMQDrainEmpty(t *testing.T) {
	o, _ := newOS(t)
	id := o.MQCreate()
	msgs, err := o.MQDrain(id)
	if err != nil {
		t.Fatalf("drain of empty queue: %v", err)
	}
	if msgs != nil {
		t.Fatalf("drain of empty queue returned %d messages, want nil", len(msgs))
	}
	// MQRecv on the same state reports ErrQueueEmpty; MQDrain must not.
	if _, err := o.MQRecv(id); !errors.Is(err, ErrQueueEmpty) {
		t.Fatalf("MQRecv on empty queue: %v, want ErrQueueEmpty", err)
	}
}

func TestMQDrainUnknownQueue(t *testing.T) {
	o, _ := newOS(t)
	if _, err := o.MQDrain(999); !errors.Is(err, ErrNoQueue) {
		t.Fatalf("drain of unknown queue: %v, want ErrNoQueue", err)
	}
}

func TestMQDrainPartialBatch(t *testing.T) {
	o, _ := newOS(t)
	id := o.MQCreate()
	for i := 0; i < 5; i++ {
		if err := o.MQSend(id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Pop two singly, then drain: the batch must hold exactly the rest,
	// in order.
	for i := 0; i < 2; i++ {
		m, err := o.MQRecv(id)
		if err != nil {
			t.Fatal(err)
		}
		if m[0] != byte(i) {
			t.Fatalf("MQRecv #%d = %d", i, m[0])
		}
	}
	msgs, err := o.MQDrain(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("drained %d messages, want 3", len(msgs))
	}
	for i, m := range msgs {
		if !bytes.Equal(m, []byte{byte(i + 2)}) {
			t.Fatalf("batch[%d] = %v, want [%d]", i, m, i+2)
		}
	}
	// And the queue is now empty.
	if msgs, err := o.MQDrain(id); err != nil || msgs != nil {
		t.Fatalf("second drain = (%d msgs, %v), want (nil, nil)", len(msgs), err)
	}
}

func TestMQDrainFullBatch(t *testing.T) {
	o, _ := newOS(t)
	id := o.MQCreate()
	const n = 64
	want := make([][]byte, n)
	for i := 0; i < n; i++ {
		want[i] = []byte(fmt.Sprintf("msg-%03d", i))
		if err := o.MQSend(id, want[i]); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := o.MQDrain(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != n {
		t.Fatalf("drained %d messages, want %d", len(msgs), n)
	}
	for i := range msgs {
		if !bytes.Equal(msgs[i], want[i]) {
			t.Fatalf("batch[%d] = %q, want %q", i, msgs[i], want[i])
		}
	}
}

// TestMQDrainConcurrentSenders interleaves drains with concurrent
// senders: across all batches every message must appear exactly once,
// and each sender's messages must appear in its send order (FIFO is
// per-queue, so per-sender subsequences are preserved).
func TestMQDrainConcurrentSenders(t *testing.T) {
	o, _ := newOS(t)
	id := o.MQCreate()
	const senders, perSender = 8, 200

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var msg [8]byte
			for i := 0; i < perSender; i++ {
				binary.LittleEndian.PutUint32(msg[0:], uint32(s))
				binary.LittleEndian.PutUint32(msg[4:], uint32(i))
				if err := o.MQSend(id, msg[:]); err != nil {
					t.Errorf("sender %d: %v", s, err)
					return
				}
			}
		}(s)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var got [][]byte
	collect := func() {
		msgs, err := o.MQDrain(id)
		if err != nil {
			t.Errorf("drain: %v", err)
		}
		got = append(got, msgs...)
	}
	for sending := true; sending; {
		select {
		case <-done:
			sending = false
		default:
			collect()
		}
	}
	collect() // final sweep after all senders finished

	if len(got) != senders*perSender {
		t.Fatalf("collected %d messages, want %d", len(got), senders*perSender)
	}
	next := make([]uint32, senders)
	for _, m := range got {
		if len(m) != 8 {
			t.Fatalf("message length %d", len(m))
		}
		s := binary.LittleEndian.Uint32(m[0:])
		i := binary.LittleEndian.Uint32(m[4:])
		if s >= senders {
			t.Fatalf("unknown sender %d", s)
		}
		if i != next[s] {
			t.Fatalf("sender %d out of order: got seq %d, want %d", s, i, next[s])
		}
		next[s]++
	}
}
