package hix

import "testing"

// FuzzDecodeRequest: hostile request bodies never panic the enclave's
// decoder.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Request{Type: ReqMemAlloc, Size: 64}).Encode())
	f.Fuzz(func(t *testing.T, buf []byte) {
		_, _ = DecodeRequest(buf)
		_, _ = DecodeResponse(buf)
		_, _ = DecodeEnvelope(buf)
	})
}
