package hix

import (
	"errors"
	"testing"

	"repro/internal/attest"
	"repro/internal/machine"
	"repro/internal/pcie"
)

func newMachine(t *testing.T) (*machine.Machine, *attest.SigningAuthority) {
	t.Helper()
	m, err := machine.New(machine.Config{
		DRAMBytes:    256 << 20,
		EPCBytes:     16 << 20,
		VRAMBytes:    64 << 20,
		Channels:     4,
		PlatformSeed: "hix-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	vendor, err := attest.NewSigningAuthority()
	if err != nil {
		t.Fatal(err)
	}
	return m, vendor
}

func TestLaunchEngagesProtection(t *testing.T) {
	m, vendor := newMachine(t)
	resetsBefore := m.GPU.ResetCount()
	ge, err := Launch(Config{Machine: m, Vendor: vendor})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Fabric.LockdownActive() {
		t.Fatal("MMIO lockdown not engaged")
	}
	if owner, ok := m.CPU.GPUOwner(m.GPUBDF); !ok || owner == 0 {
		t.Fatal("GPU not registered in GECS")
	}
	if m.GPU.ResetCount() <= resetsBefore {
		t.Fatal("GPU was not reset during secure initialization")
	}
	if ge.BIOSMeasurement().IsZero() {
		t.Fatal("BIOS not measured")
	}
	if ge.RoutingMeasurement().IsZero() {
		t.Fatal("routing not measured")
	}
	if ge.Measurement().IsZero() {
		t.Fatal("enclave not measured")
	}
	if !attest.VerifyEndorsement(vendor.PublicKey(), ge.Measurement(), ge.Endorsement()) {
		t.Fatal("endorsement does not verify")
	}
}

func TestMeasurementStableAcrossMachines(t *testing.T) {
	m1, v1 := newMachine(t)
	m2, v2 := newMachine(t)
	ge1, err := Launch(Config{Machine: m1, Vendor: v1})
	if err != nil {
		t.Fatal(err)
	}
	ge2, err := Launch(Config{Machine: m2, Vendor: v2})
	if err != nil {
		t.Fatal(err)
	}
	if ge1.Measurement() != ge2.Measurement() {
		t.Fatal("same driver image measured differently")
	}
	if ge1.BIOSMeasurement() != ge2.BIOSMeasurement() {
		t.Fatal("same GPU BIOS measured differently")
	}
	// A different driver image changes MRENCLAVE.
	m3, v3 := newMachine(t)
	ge3, err := Launch(Config{Machine: m3, Vendor: v3, DriverImage: []byte("evil driver")})
	if err != nil {
		t.Fatal(err)
	}
	if ge3.Measurement() == ge1.Measurement() {
		t.Fatal("different driver, same measurement")
	}
}

func TestBIOSPinning(t *testing.T) {
	m1, v1 := newMachine(t)
	ge, err := Launch(Config{Machine: m1, Vendor: v1})
	if err != nil {
		t.Fatal(err)
	}
	goodBIOS := ge.BIOSMeasurement()

	// Pinning to the right BIOS succeeds.
	m2, v2 := newMachine(t)
	if _, err := Launch(Config{Machine: m2, Vendor: v2, ExpectedBIOS: goodBIOS}); err != nil {
		t.Fatalf("pinned launch failed: %v", err)
	}
	// Pinning to a different BIOS (i.e. the BIOS was tampered with
	// before the enclave started) aborts launch.
	m3, v3 := newMachine(t)
	bad := attest.Measure([]byte("compromised bios"))
	if _, err := Launch(Config{Machine: m3, Vendor: v3, ExpectedBIOS: bad}); !errors.Is(err, ErrBIOSMismatch) {
		t.Fatalf("tampered BIOS launch: %v", err)
	}
}

func TestSecondLaunchRejected(t *testing.T) {
	m, vendor := newMachine(t)
	if _, err := Launch(Config{Machine: m, Vendor: vendor}); err != nil {
		t.Fatal(err)
	}
	if _, err := Launch(Config{Machine: m, Vendor: vendor}); err == nil {
		t.Fatal("second GPU enclave claimed the same GPU")
	}
}

func TestLaunchConfigValidation(t *testing.T) {
	m, vendor := newMachine(t)
	if _, err := Launch(Config{Machine: nil, Vendor: vendor}); err == nil {
		t.Fatal("nil machine accepted")
	}
	if _, err := Launch(Config{Machine: m, Vendor: nil}); err == nil {
		t.Fatal("nil vendor accepted")
	}
}

func TestBaselineDriverBlockedAfterLaunch(t *testing.T) {
	// Once the GPU enclave owns the device, the OS-resident driver's
	// MMIO mappings stop working: the walker denies its fills.
	m, vendor := newMachine(t)
	if _, err := Launch(Config{Machine: m, Vendor: vendor}); err != nil {
		t.Fatal(err)
	}
	kproc := m.OS.NewProcess()
	bar0, bar0Size, _ := m.GPU.Config().BAR(0)
	va, err := m.OS.MapPhys(kproc, bar0, bar0Size, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CPU.ReadAsOS(kproc.PID, kproc.PT, va, make([]byte, 4)); err == nil {
		t.Fatal("OS driver still reaches GPU MMIO after EGCREATE")
	}
	_ = pcie.BDF{}
}

func TestRequestTypeStrings(t *testing.T) {
	for r := ReqMemAlloc; r <= ReqClose; r++ {
		if s := r.String(); s == "" || s[0] == 'R' {
			t.Fatalf("missing String for %d: %q", r, s)
		}
	}
	if ReqType(99).String() == "" {
		t.Fatal("unknown ReqType string")
	}
}

func TestProtocolEncodingRoundtrip(t *testing.T) {
	req := Request{
		Type: ReqMemcpyHtoD, Ptr: 0x1000, Size: 5, SegOff: 64, Len: 4096,
		Kernel: "vec_add", Flags: 1,
	}
	req.Params[0] = 7
	req.Params[7] = 9
	back, err := DecodeRequest(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back != req {
		t.Fatalf("request roundtrip: %+v != %+v", back, req)
	}
	if _, err := DecodeRequest([]byte{1, 2, 3}); err == nil {
		t.Fatal("short request decoded")
	}
	resp := Response{Status: RespAuthFailed, CompleteNS: 12345, Value: 42}
	rback, err := DecodeResponse(resp.Encode())
	if err != nil || rback != resp {
		t.Fatalf("response roundtrip: %+v, %v", rback, err)
	}
	if _, err := DecodeResponse(nil); err == nil {
		t.Fatal("empty response decoded")
	}
	env := Envelope{SessionID: 3, SubmitNS: 99, Body: []byte("ct")}
	eback, err := DecodeEnvelope(env.Encode())
	if err != nil || eback.SessionID != 3 || eback.SubmitNS != 99 || string(eback.Body) != "ct" {
		t.Fatalf("envelope roundtrip: %+v, %v", eback, err)
	}
	if _, err := DecodeEnvelope([]byte{0}); err == nil {
		t.Fatal("short envelope decoded")
	}
	bad := env.Encode()
	bad[0] ^= 0xFF
	if _, err := DecodeEnvelope(bad); err == nil {
		t.Fatal("bad magic envelope decoded")
	}
}

func TestNonceChannelSeparation(t *testing.T) {
	seen := map[uint32]bool{}
	for sid := uint32(1); sid <= 4; sid++ {
		for ch := NonceUserMeta; ch <= NonceDataDtoH; ch++ {
			v := NonceChannel(sid, ch)
			if seen[v] {
				t.Fatalf("nonce channel collision at sid=%d ch=%d", sid, ch)
			}
			seen[v] = true
		}
	}
}

func TestRoutingPinning(t *testing.T) {
	// Learn the good routing measurement.
	m1, v1 := newMachine(t)
	ge, err := Launch(Config{Machine: m1, Vendor: v1})
	if err != nil {
		t.Fatal(err)
	}
	good := ge.RoutingMeasurement()

	// Pinning to it succeeds on an identical machine.
	m2, v2 := newMachine(t)
	if _, err := Launch(Config{Machine: m2, Vendor: v2, ExpectedRouting: good}); err != nil {
		t.Fatalf("pinned launch failed: %v", err)
	}

	// A pre-launch reroute (the adversary moves BAR0 before the GPU
	// enclave exists — lockdown is not yet engaged) is detected.
	m3, v3 := newMachine(t)
	base, _, _ := m3.GPU.Config().BAR(0)
	if err := m3.Fabric.ConfigWrite32(m3.GPUBDF, pcie.RegBAR0, uint32(base)+0x400_0000); err != nil {
		t.Fatal(err)
	}
	if _, err := Launch(Config{Machine: m3, Vendor: v3, ExpectedRouting: good}); !errors.Is(err, ErrRoutingMismatch) {
		t.Fatalf("pre-launch reroute not detected: %v", err)
	}
}
