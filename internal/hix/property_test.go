package hix

import (
	"testing"
	"testing/quick"

	"repro/internal/gpu"
)

// Property: every well-formed Request survives Encode/Decode untouched.
func TestRequestRoundtripProperty(t *testing.T) {
	f := func(typ uint8, ptr, size, segOff, length uint64, name []byte,
		params [gpu.NumKernelParams]uint64, nonce [gpu.NonceSize]byte, flags uint32) bool {
		if len(name) > gpu.KernelNameSize {
			name = name[:gpu.KernelNameSize]
		}
		// Kernel names are C strings on the wire: no interior NULs, and
		// trailing NULs are not preserved.
		for i, c := range name {
			if c == 0 {
				name = name[:i]
				break
			}
		}
		req := Request{
			Type: ReqType(typ), Ptr: ptr, Size: size, SegOff: segOff,
			Len: length, Kernel: string(name), Params: params,
			Nonce: nonce, Flags: flags,
		}
		back, err := DecodeRequest(req.Encode())
		return err == nil && back == req
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: every Response survives Encode/Decode.
func TestResponseRoundtripProperty(t *testing.T) {
	f := func(status uint32, complete int64, value uint64) bool {
		r := Response{Status: RespStatus(status), CompleteNS: complete, Value: value}
		back, err := DecodeResponse(r.Encode())
		return err == nil && back == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: envelope framing is robust — decoding arbitrary bytes never
// panics, and valid envelopes roundtrip.
func TestEnvelopeRobustnessProperty(t *testing.T) {
	f := func(raw []byte, sid uint32, submit int64, body []byte) bool {
		// Arbitrary input: must not panic (error is fine).
		_, _ = DecodeEnvelope(raw)
		env := Envelope{SessionID: sid, SubmitNS: submit, Body: body}
		back, err := DecodeEnvelope(env.Encode())
		if err != nil {
			return false
		}
		if back.SessionID != sid || back.SubmitNS != submit {
			return false
		}
		return string(back.Body) == string(body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: DecodeRequest rejects every wrong-length buffer without
// panicking.
func TestRequestDecodeRejectsJunkProperty(t *testing.T) {
	want := len((&Request{}).Encode())
	f := func(junk []byte) bool {
		if len(junk) == want {
			junk = junk[:want-1]
		}
		_, err := DecodeRequest(junk)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
