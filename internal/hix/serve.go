package hix

import (
	"errors"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/ocb"
	"repro/internal/osim"
	"repro/internal/sim"
)

// doubleCopyPenalty charges the naive double-copy design's extra work
// (§4.4.2): the GPU enclave decrypts the user ciphertext, re-encrypts
// under a second key, and performs an extra host-side copy. Timing-only;
// functional behavior is unchanged.
func (e *Enclave) doubleCopyPenalty(s *session, now sim.Time, n int, flags uint32) sim.Time {
	if flags&FlagDoubleCopy == 0 {
		return now
	}
	cm := e.core.Cost()
	lane := sim.CryptoLane(int(s.id) % maxInt(cm.CPULanes, 1))
	_, now = e.core.Timeline().AcquireLabeled(lane, "dc-decrypt", now, cm.CPUCryptoTime(n))
	_, now = e.core.Timeline().AcquireLabeled(lane, "dc-reencrypt", now, cm.CPUCryptoTime(n))
	cpu := sim.CPULane(int(s.id) % maxInt(cm.CPULanes, 1))
	_, now = e.core.Timeline().AcquireLabeled(cpu, "dc-copy", now,
		sim.TransferTime(n, cm.HostMemcpyBandwidth, 0))
	return now
}

// managedErrResponse maps paging errors to protocol statuses.
func managedErrResponse(err error, now sim.Time) Response {
	if errors.Is(err, ErrAuth) {
		return Response{Status: RespAuthFailed, CompleteNS: int64(now)}
	}
	return Response{Status: RespBadRequest, CompleteNS: int64(now)}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Serve drains every session's Request queue, handling each Request and
// posting an encrypted response. In the real system the GPU enclave is a
// separate process woken by the message queue (§4.4.1); the simulation
// invokes Serve synchronously after each send, with all costs accounted
// on the shared simulated timeline.
func (e *Enclave) Serve() error {
	e.mu.Lock()
	sessions := make([]*session, 0, len(e.sessions))
	for _, s := range e.sessions {
		sessions = append(sessions, s)
	}
	dead := e.dead
	e.mu.Unlock()
	if dead {
		return ErrEnclaveDead
	}
	for _, s := range sessions {
		for {
			msg, err := e.m.OS.MQRecv(s.reqQ)
			if errors.Is(err, osim.ErrQueueEmpty) {
				break
			}
			if err != nil {
				return err
			}
			e.handleMessage(s, msg)
		}
	}
	return nil
}

// handleMessage decrypts, dispatches and answers one Request. Every
// failure path still produces a response so the user enclave can abort
// cleanly rather than hang.
func (e *Enclave) handleMessage(s *session, msg []byte) {
	env, err := DecodeEnvelope(msg)
	if err != nil || env.SessionID != s.id || !s.active {
		e.respond(s, Response{Status: RespBadRequest, CompleteNS: int64(s.now)})
		return
	}
	// Requests are handled when they arrive; ordering on the device is
	// enforced by the per-resource timeline (the enclave queues commands
	// asynchronously and only the caller polls fences), so chunk n+1's
	// DMA overlaps chunk n's in-GPU decryption (§5.2).
	now := sim.Time(env.SubmitNS)
	if now < 0 {
		now = 0
	}

	// Open the Request under the expected counter nonce: a replayed,
	// reordered or tampered message fails here (§5.5).
	nonce := s.userMeta.Next()
	body, err := s.aead.Open(nil, nonce, env.Body, nil)
	if err != nil {
		e.respond(s, Response{Status: RespAuthFailed, CompleteNS: int64(now)})
		return
	}
	// Metadata decryption cost (§4.4.3: "the GPU enclave decrypts the
	// Request").
	lanes := e.core.Cost().CPULanes
	if lanes <= 0 {
		lanes = 1
	}
	_, now = e.core.Timeline().AcquireLabeled(sim.CPULane(int(s.id)%lanes), "meta-open", now,
		e.core.Cost().CPUCryptoTime(len(body)))

	req, err := DecodeRequest(body)
	if err != nil {
		e.respond(s, Response{Status: RespBadRequest, CompleteNS: int64(now)})
		return
	}
	resp := e.dispatch(s, req, now)
	e.respond(s, resp)
}

func (e *Enclave) respond(s *session, r Response) {
	s.now = sim.Max(s.now, sim.Time(r.CompleteNS))
	body := r.Encode()
	// Seal the response under the GE->user meta channel.
	var ct []byte
	if s.aead != nil {
		ct = s.aead.Seal(nil, s.geMeta.Next(), body, nil)
	} else {
		ct = body
	}
	env := Envelope{SessionID: s.id, SubmitNS: r.CompleteNS, Body: ct}
	_ = e.m.OS.MQSend(s.respQ, env.Encode())
}

func (e *Enclave) dispatch(s *session, req Request, now sim.Time) Response {
	switch req.Type {
	case ReqMemAlloc:
		return e.doMemAlloc(s, req, now)
	case ReqMemFree:
		return e.doMemFree(s, req, now)
	case ReqMemcpyHtoD:
		return e.doHtoD(s, req, now)
	case ReqMemcpyDtoH:
		return e.doDtoH(s, req, now)
	case ReqLaunch:
		return e.doLaunch(s, req, now)
	case ReqClose:
		return e.doClose(s, now)
	case ReqManagedAlloc:
		return e.doManagedAlloc(s, req, now)
	case ReqManagedFree:
		return e.doManagedFree(s, req, now)
	default:
		return Response{Status: RespBadRequest, CompleteNS: int64(now)}
	}
}

// slotSize is the capacity of one in-VRAM staging slot.
func (s *session) slotSize() uint64 {
	slots := s.stagingSlots
	if slots == 0 {
		slots = 2
	}
	return s.stagingSize / slots
}

// nextStagingSlot rotates through the session's in-VRAM staging ring, so
// an in-flight DMA never races the crypto of another outstanding chunk
// (mirroring the user side's slotted shared-memory window). With the
// default two slots this is the classic double buffer.
func (s *session) nextStagingSlot() uint64 {
	slots := s.stagingSlots
	if slots == 0 {
		slots = 2
	}
	slot := s.staging + (s.stagingTurn%slots)*s.slotSize()
	s.stagingTurn++
	return slot
}

// ownsRange verifies the session owns [ptr, ptr+size): the GPU enclave
// never lets one user name another user's device memory (§4.5).
func (s *session) ownsRange(ptr, size uint64) bool {
	for base, sz := range s.allocs {
		if ptr >= base && ptr+size <= base+sz && ptr+size >= ptr {
			return true
		}
	}
	return false
}

func (e *Enclave) doMemAlloc(s *session, req Request, now sim.Time) Response {
	addr, err := e.core.AllocVRAM(req.Size)
	if err != nil {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	_, now = e.core.Timeline().AcquireLabeled(sim.CPULane(int(s.id)%maxInt(e.core.Cost().CPULanes, 1)), "mem-alloc", now, e.core.Cost().MemAllocPerCall)
	st, now, err := e.core.Submit(s.channel, now, gpu.OpBindMemory,
		gpu.BuildBindMemory(s.ctxID, addr, e.core.AllocatedSize(addr)))
	if err != nil || st != gpu.StatusOK {
		_ = e.core.FreeVRAM(addr)
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	s.allocs[addr] = e.core.AllocatedSize(addr)
	return Response{Status: RespOK, CompleteNS: int64(now), Value: addr}
}

// doMemFree cleanses before release: the HIX runtime "must cleanse the
// deallocated global memory" to stop residual-data leaks (§4.5) — the
// security improvement over the baseline driver's free.
func (e *Enclave) doMemFree(s *session, req Request, now sim.Time) Response {
	size, ok := s.allocs[req.Ptr]
	if !ok {
		return Response{Status: RespBadRequest, CompleteNS: int64(now)}
	}
	st, now, err := e.core.Submit(s.channel, now, gpu.OpFill,
		gpu.BuildFill(req.Ptr, size, 0, req.Flags))
	if err != nil || st != gpu.StatusOK {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	st, now, err = e.core.Submit(s.channel, now, gpu.OpUnbindMemory,
		gpu.BuildBindMemory(s.ctxID, req.Ptr, size))
	if err != nil || st != gpu.StatusOK {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	delete(s.allocs, req.Ptr)
	_ = e.core.FreeVRAM(req.Ptr)
	return Response{Status: RespOK, CompleteNS: int64(now)}
}

// doHtoD implements one chunk of the single-copy host-to-device path
// (§4.4.2–§4.4.3): DMA the user's ciphertext from inter-enclave shared
// memory straight into the in-VRAM staging buffer, then run the in-GPU
// OCB decryption kernel writing plaintext to the destination. The GPU
// enclave never touches (or could even read) the plaintext.
func (e *Enclave) doHtoD(s *session, req Request, now sim.Time) Response {
	nonce := req.Nonce[:]
	ctLen := req.Len // ciphertext incl. tag
	if ctLen < ocb.TagSize || ctLen > s.slotSize() {
		return Response{Status: RespBadRequest, CompleteNS: int64(now)}
	}
	ptLen := ctLen - ocb.TagSize
	dst := req.Ptr
	if dst >= managedBase {
		var err error
		dst, now, err = e.resolveManaged(s, req.Ptr, ptLen, now, req.Flags)
		if err != nil {
			return managedErrResponse(err, now)
		}
	} else if !s.ownsRange(dst, ptLen) {
		return Response{Status: RespBadRequest, CompleteNS: int64(now)}
	}
	hostPA, err := s.seg.PhysAt(int(req.SegOff))
	if err != nil {
		return Response{Status: RespBadRequest, CompleteNS: int64(now)}
	}
	staging := s.nextStagingSlot()
	now = e.doubleCopyPenalty(s, now, int(ptLen), req.Flags)
	st, now, err := e.core.Submit(s.channel, now, gpu.OpDMAHtoD,
		gpu.BuildDMA(staging, uint64(hostPA), ctLen, req.Flags&^FlagDoubleCopy))
	if err != nil || st != gpu.StatusOK {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	st, now, err = e.core.Submit(s.channel, now, gpu.OpCryptoDecrypt,
		gpu.BuildCrypto(staging, dst, ctLen, s.id, nonce, req.Flags&^FlagDoubleCopy))
	if err != nil {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	if st == gpu.StatusAuthFailed {
		return Response{Status: RespAuthFailed, CompleteNS: int64(now)}
	}
	if st != gpu.StatusOK {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	return Response{Status: RespOK, CompleteNS: int64(now)}
}

// doDtoH is the reverse single-copy path: in-GPU OCB encryption into
// staging, then DMA of the ciphertext to inter-enclave shared memory for
// the user enclave to open.
func (e *Enclave) doDtoH(s *session, req Request, now sim.Time) Response {
	nonce := req.Nonce[:]
	ptLen := req.Len
	if ptLen == 0 || ptLen+ocb.TagSize > s.slotSize() {
		return Response{Status: RespBadRequest, CompleteNS: int64(now)}
	}
	src := req.Ptr
	if src >= managedBase {
		var err error
		src, now, err = e.resolveManaged(s, req.Ptr, ptLen, now, req.Flags)
		if err != nil {
			return managedErrResponse(err, now)
		}
	} else if !s.ownsRange(src, ptLen) {
		return Response{Status: RespBadRequest, CompleteNS: int64(now)}
	}
	hostPA, err := s.seg.PhysAt(int(req.SegOff))
	if err != nil {
		return Response{Status: RespBadRequest, CompleteNS: int64(now)}
	}
	staging := s.nextStagingSlot()
	now = e.doubleCopyPenalty(s, now, int(ptLen), req.Flags)
	st, now, err := e.core.Submit(s.channel, now, gpu.OpCryptoEncrypt,
		gpu.BuildCrypto(src, staging, ptLen, s.id, nonce, req.Flags&^FlagDoubleCopy))
	if err != nil || st != gpu.StatusOK {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	st, now, err = e.core.Submit(s.channel, now, gpu.OpDMADtoH,
		gpu.BuildDMA(staging, uint64(hostPA), ptLen+ocb.TagSize, req.Flags&^FlagDoubleCopy))
	if err != nil || st != gpu.StatusOK {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	return Response{Status: RespOK, CompleteNS: int64(now)}
}

func (e *Enclave) doLaunch(s *session, req Request, now sim.Time) Response {
	// Translate managed handles among the kernel parameters to resident
	// VRAM addresses, paging buffers in as needed (the unified-memory
	// convenience of the demand-paging extension).
	params := req.Params
	for i, p := range params {
		if p < managedBase {
			continue
		}
		b, off, ok := s.managedLookup(p)
		if !ok {
			continue // not a managed handle of this session
		}
		var err error
		now, err = e.ensureResident(b, now, req.Flags)
		if err != nil {
			return managedErrResponse(err, now)
		}
		params[i] = b.vram + off
	}
	st, now, err := e.core.Submit(s.channel, now, gpu.OpLaunch,
		gpu.BuildLaunch(req.Kernel, params, req.Flags))
	if err != nil || st != gpu.StatusOK {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	return Response{Status: RespOK, CompleteNS: int64(now)}
}

// doClose tears a session down: cleanse and free every allocation plus
// the staging buffer, destroy the GPU context, release the channel.
func (e *Enclave) doClose(s *session, now sim.Time) Response {
	for ptr, size := range s.allocs {
		st, n2, err := e.core.Submit(s.channel, now, gpu.OpFill, gpu.BuildFill(ptr, size, 0, 0))
		if err == nil && st == gpu.StatusOK {
			now = n2
		}
		_ = e.core.FreeVRAM(ptr)
	}
	s.allocs = make(map[uint64]uint64)
	for handle := range s.managed {
		e.doManagedFree(s, Request{Ptr: handle}, now)
	}
	if s.staging != 0 || s.stagingSize != 0 {
		st, n2, err := e.core.Submit(s.channel, now, gpu.OpFill,
			gpu.BuildFill(s.staging, s.stagingSize, 0, 0))
		if err == nil && st == gpu.StatusOK {
			now = n2
		}
		_ = e.core.FreeVRAM(s.staging)
	}
	_, now, _ = e.core.Submit(s.channel, now, gpu.OpDestroyContext, gpu.BuildDestroyContext(s.ctxID))
	e.mu.Lock()
	delete(e.sessions, s.id)
	delete(e.channels, s.channel)
	e.mu.Unlock()
	s.active = false
	return Response{Status: RespOK, CompleteNS: int64(now)}
}

// SessionCount reports live sessions (diagnostics).
func (e *Enclave) SessionCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sessions)
}

// sessionByID is used by tests within the package.
func (e *Enclave) sessionByID(id uint32) (*session, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSession, id)
	}
	return s, nil
}
