package hix

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/gpu"
	"repro/internal/ocb"
	"repro/internal/sim"
)

// The serving engine (§4.4.1: the GPU enclave is woken by the message
// queue and serves every session's pending requests) runs each wakeup in
// two phases:
//
//   - Phase P (data, parallel): per-session batches are prepared by up
//     to ServeWorkers goroutines. All real work that has a
//     deterministic, order-independent outcome happens here — envelope
//     decode, nonce-counter authentication, request decode, and for
//     data-plane requests the actual DMA + in-GPU crypto + kernel
//     execution, submitted in PhaseData so the device moves bytes but
//     accounts no simulated time. Every charge and submission is
//     recorded as a step.
//   - Phase T (time, serial): batches are replayed in canonical order —
//     ascending session id, per-session FIFO — charging the recorded
//     steps on the shared timeline (device timing via PhaseTime
//     commands) and posting responses. Requests whose outcome depends
//     on execution order (allocation, paging, teardown) were deferred
//     in phase P and execute here in full.
//
// Because phase T alone touches the timeline and always runs in the
// same order, the simulated schedule is byte-identical for every
// ServeWorkers value — concurrency buys host wall-clock, not a
// different answer.

// exec abstracts how a request handler charges simulated time and
// submits device commands, so the same handler code runs both live
// (serial, charging as it goes) and recorded (data phase, charges and
// submissions logged for canonical replay).
type exec interface {
	charge(res sim.Resource, label string, now sim.Time, d sim.Duration) sim.Time
	submit(s *session, now sim.Time, op gpu.Opcode, payload []byte) (gpu.Status, sim.Time, error)
}

// liveExec charges and submits immediately (phase T and legacy serial
// handling).
type liveExec struct{ e *Enclave }

func (x liveExec) charge(res sim.Resource, label string, now sim.Time, d sim.Duration) sim.Time {
	_, now = x.e.core.Timeline().AcquireLabeled(res, label, now, d)
	return now
}

func (x liveExec) submit(s *session, now sim.Time, op gpu.Opcode, payload []byte) (gpu.Status, sim.Time, error) {
	return x.e.core.Submit(s.channel, now, op, payload)
}

// step is one recorded action of a phase-P request: either a timeline
// charge or a device submission (with its observed status, replayed as
// a PhaseTime command).
type step struct {
	submit  bool
	res     sim.Resource
	label   string
	dur     sim.Duration
	op      gpu.Opcode
	payload []byte
	st      gpu.Status
}

// recExec executes device work in PhaseData (real bytes, no simulated
// time) and records every action for phase-T replay.
type recExec struct {
	e     *Enclave
	steps []step
}

func (x *recExec) charge(res sim.Resource, label string, now sim.Time, d sim.Duration) sim.Time {
	x.steps = append(x.steps, step{res: res, label: label, dur: d})
	return now
}

func (x *recExec) submit(s *session, now sim.Time, op gpu.Opcode, payload []byte) (gpu.Status, sim.Time, error) {
	st, now, err := x.e.core.SubmitPhase(s.channel, now, op, payload, gpu.PhaseData, 0)
	if err != nil {
		return st, now, err
	}
	x.steps = append(x.steps, step{submit: true, op: op, payload: payload, st: st})
	return st, now, nil
}

// replaySteps charges a recorded request's steps at its canonical point
// in the schedule and returns the completion time.
func (e *Enclave) replaySteps(s *session, now sim.Time, steps []step) sim.Time {
	for _, st := range steps {
		if st.submit {
			_, now, _ = e.core.SubmitPhase(s.channel, now, st.op, st.payload, gpu.PhaseTime, st.st)
		} else {
			_, now = e.core.Timeline().AcquireLabeled(st.res, st.label, now, st.dur)
		}
	}
	return now
}

// doubleCopyPenalty charges the naive double-copy design's extra work
// (§4.4.2): the GPU enclave decrypts the user ciphertext, re-encrypts
// under a second key, and performs an extra host-side copy. Timing-only;
// functional behavior is unchanged.
func (e *Enclave) doubleCopyPenalty(x exec, s *session, now sim.Time, n int, flags uint32) sim.Time {
	if flags&FlagDoubleCopy == 0 {
		return now
	}
	cm := e.core.Cost()
	lane := sim.CryptoLane(int(s.id) % max(cm.CPULanes, 1))
	now = x.charge(lane, "dc-decrypt", now, cm.CPUCryptoTime(n))
	now = x.charge(lane, "dc-reencrypt", now, cm.CPUCryptoTime(n))
	cpu := sim.CPULane(int(s.id) % max(cm.CPULanes, 1))
	now = x.charge(cpu, "dc-copy", now, sim.TransferTime(n, cm.HostMemcpyBandwidth, 0))
	return now
}

// managedErrResponse maps paging errors to protocol statuses.
func managedErrResponse(err error, now sim.Time) Response {
	if errors.Is(err, ErrAuth) {
		return Response{Status: RespAuthFailed, CompleteNS: int64(now)}
	}
	return Response{Status: RespBadRequest, CompleteNS: int64(now)}
}

// servedKind classifies a prepared message for phase T.
type servedKind uint8

const (
	srvReject     servedKind = iota // malformed envelope, wrong/closed session
	srvAuthFailed                   // meta-channel authentication failed
	srvRecorded                     // data-plane work done; steps + status recorded
	srvDeferred                     // serial-only request, dispatched live in phase T
)

// served is one prepared request awaiting its phase-T turn.
type served struct {
	kind  servedKind
	now   sim.Time // clamped client submit instant
	steps []step
	resp  Response // srvRecorded: status decided in phase P
	req   Request  // srvDeferred
}

// serveBatch is one session's drained epoch.
type serveBatch struct {
	s     *session
	msgs  [][]byte
	items []served
}

// serialOnly reports whether a request must wait for the serial timing
// phase: anything that mutates shared registries (VRAM allocator,
// bindings, session table) or touches demand-paged memory, where
// execution order itself determines the result (e.g. which addresses
// the allocator hands out, which buffer is the LRU eviction victim).
func serialOnly(req Request) bool {
	switch req.Type {
	case ReqMemcpyHtoD, ReqMemcpyDtoH:
		return req.Ptr >= managedBase
	case ReqLaunch:
		for _, p := range req.Params {
			if p >= managedBase {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// Serve drains every session's request queue and answers each request,
// with all costs accounted on the shared simulated timeline. In the real
// system the GPU enclave is a separate process woken by the message
// queue (§4.4.1); the simulation invokes Serve synchronously after each
// send. Concurrent callers serialize: one wakeup owns the queues.
func (e *Enclave) Serve() error { return e.serve(nil) }

// ServeSessions is a targeted wakeup: it drains only the listed
// sessions' request queues, in canonical (ascending session id) order.
// An external batcher (internal/sched) that knows exactly which
// sessions enqueued work this epoch uses it to skip the full
// session-table scan of Serve; the two-phase engine underneath is the
// same, so for the sessions listed the outcome — responses, ciphertext,
// timeline charges — is identical to a full Serve at the same point.
// Unknown ids are ignored (the session may have closed between enqueue
// and wakeup); duplicates are drained once.
func (e *Enclave) ServeSessions(ids []uint32) error {
	if len(ids) == 0 {
		return nil
	}
	return e.serve(ids)
}

// ServeStats counts serving-engine wakeups (diagnostics; see
// internal/sched for the per-tenant view).
type ServeStats struct {
	Wakeups      int64 // Serve/ServeSessions calls that got the queues
	EmptyWakeups int64 // wakeups that found no pending request
	Batches      int64 // per-session batches prepared (sessions with work)
	Requests     int64 // requests answered
}

// ServeStats returns a snapshot of the serving-engine counters.
func (e *Enclave) ServeStats() ServeStats {
	return ServeStats{
		Wakeups:      e.stats.wakeups.Load(),
		EmptyWakeups: e.stats.emptyWakeups.Load(),
		Batches:      e.stats.batches.Load(),
		Requests:     e.stats.requests.Load(),
	}
}

// serve is the wakeup body. ids == nil drains every session (Serve);
// otherwise only the listed sessions (ServeSessions).
func (e *Enclave) serve(ids []uint32) error {
	e.serveMu.Lock()
	defer e.serveMu.Unlock()
	e.stats.wakeups.Add(1)

	e.mu.Lock()
	var sessions []*session
	if ids == nil {
		sessions = make([]*session, 0, len(e.sessions))
		for _, s := range e.sessions {
			sessions = append(sessions, s)
		}
	} else {
		sessions = make([]*session, 0, len(ids))
		for _, id := range ids {
			if s, ok := e.sessions[id]; ok {
				sessions = append(sessions, s)
			}
		}
	}
	dead := e.dead
	e.mu.Unlock()
	if dead {
		return ErrEnclaveDead
	}
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })

	batches := make([]*serveBatch, 0, len(sessions))
	var prev *session
	for _, s := range sessions {
		if s == prev { // duplicate id in a ServeSessions list
			continue
		}
		prev = s
		msgs, err := e.m.OS.MQDrain(s.reqQ)
		if err != nil {
			return err
		}
		if len(msgs) > 0 {
			batches = append(batches, &serveBatch{s: s, msgs: msgs})
		}
	}
	if len(batches) == 0 {
		e.stats.emptyWakeups.Add(1)
		return nil
	}
	e.stats.batches.Add(int64(len(batches)))
	for _, b := range batches {
		e.stats.requests.Add(int64(len(b.msgs)))
	}

	// Phase P: prepare batches, in parallel when configured. Each batch
	// is owned by exactly one worker, so per-session state (nonce
	// counters, staging ring, ownership tables) needs no locking; the
	// device layer's per-channel submission state keeps concurrent
	// PhaseData submissions of different sessions apart.
	if workers := min(e.serveWorkers, len(batches)); workers <= 1 {
		for _, b := range batches {
			b.items = e.prepBatch(b.s, b.msgs)
		}
	} else {
		var next int32 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt32(&next, 1))
					if i >= len(batches) {
						return
					}
					b := batches[i]
					b.items = e.prepBatch(b.s, b.msgs)
				}
			}()
		}
		wg.Wait()
	}

	// The serving-loop activation (§4.4.1): the GPU enclave is a
	// separate process woken by the message queue, so every non-empty
	// wakeup pays for the kernel wakeup delivery, the enclave re-entry,
	// and the request-queue scan on the enclave's serving core — once
	// per wakeup, not per request. A batch spanning many sessions shares
	// a single activation; that amortization is what an external batcher
	// buys. Each partition's command stream has its own serving context
	// (its GECore lane), so a wakeup is charged per partition with work
	// this epoch, anchored at that partition's earliest admitted
	// request's submit instant — the charge stays a pure function of the
	// partition's own batch, untouched by sibling-partition load.
	partHasWork := make(map[int]bool)
	partWakeAt := make(map[int]sim.Time)
	for _, b := range batches {
		p := b.s.part
		partHasWork[p] = true
		for _, it := range b.items {
			if it.kind != srvReject {
				if t, ok := partWakeAt[p]; !ok || it.now < t {
					partWakeAt[p] = it.now
				}
			}
		}
	}
	wakeDone := make(map[int]sim.Time, len(partHasWork))
	for p := range e.parts {
		if !partHasWork[p] {
			continue
		}
		// A partition whose admitted set is empty (all rejects) still
		// pays the activation, anchored at 0 — the map's zero value.
		_, done := e.core.Timeline().AcquireLabeled(e.parts[p].GECore, "ge-wakeup", partWakeAt[p], e.core.Cost().ServeWakeup)
		wakeDone[p] = done
	}

	// Phase T: replay in canonical order and respond. Interleaving in
	// *simulated* time is the timeline's gap-filling scheduler's job;
	// processing order here only has to be deterministic.
	for _, b := range batches {
		wd := wakeDone[b.s.part]
		for _, it := range b.items {
			e.finishItem(b.s, it, wd)
		}
	}
	return nil
}

// prepBatch runs phase P for one session's drained messages, in FIFO
// order. Once a serial-only request is seen, every later request of the
// batch is deferred too, preserving program order; after a Close, later
// messages are rejected without consuming nonces (the session will be
// inactive by the time they are answered).
func (e *Enclave) prepBatch(s *session, msgs [][]byte) []served {
	items := make([]served, 0, len(msgs))
	deferring := false
	closed := false
	for _, msg := range msgs {
		env, err := DecodeEnvelope(msg)
		if err != nil || env.SessionID != s.id || !s.active || closed {
			items = append(items, served{kind: srvReject})
			continue
		}
		now := sim.Time(env.SubmitNS)
		if now < 0 {
			now = 0
		}
		// Open the request under the expected counter nonce: a replayed,
		// reordered or tampered message fails here (§5.5).
		nonce := s.userMeta.Next()
		body, err := s.aead.Open(nil, nonce, env.Body, nil)
		if err != nil {
			items = append(items, served{kind: srvAuthFailed, now: now})
			continue
		}
		// Metadata decryption cost (§4.4.3: "the GPU enclave decrypts
		// the Request").
		rx := &recExec{e: e}
		lane := sim.CPULane(int(s.id) % max(e.core.Cost().CPULanes, 1))
		rx.charge(lane, "meta-open", now, e.core.Cost().CPUCryptoTime(len(body)))

		req, err := DecodeRequest(body)
		if err != nil {
			items = append(items, served{kind: srvRecorded, now: now, steps: rx.steps,
				resp: Response{Status: RespBadRequest}})
			continue
		}
		if deferring || serialOnly(req) {
			deferring = true
			if req.Type == ReqClose {
				closed = true
			}
			items = append(items, served{kind: srvDeferred, now: now, steps: rx.steps, req: req})
			continue
		}
		resp := e.dispatch(rx, s, req, now)
		items = append(items, served{kind: srvRecorded, now: now, steps: rx.steps, resp: resp})
	}
	return items
}

// finishItem runs phase T for one prepared request: charge its steps at
// the canonical point in the schedule — no earlier than the wakeup
// activation that served it — run deferred work live, respond.
func (e *Enclave) finishItem(s *session, it served, wakeDone sim.Time) {
	switch it.kind {
	case srvReject:
		e.respond(s, Response{Status: RespBadRequest, CompleteNS: int64(s.now)})
	case srvAuthFailed:
		e.respond(s, Response{Status: RespAuthFailed, CompleteNS: int64(sim.Max(it.now, wakeDone))})
	case srvRecorded:
		now := e.replaySteps(s, sim.Max(it.now, wakeDone), it.steps)
		r := it.resp
		r.CompleteNS = int64(now)
		e.respond(s, r)
	case srvDeferred:
		now := e.replaySteps(s, sim.Max(it.now, wakeDone), it.steps)
		e.respond(s, e.dispatch(liveExec{e}, s, it.req, now))
	}
}

func (e *Enclave) respond(s *session, r Response) {
	s.now = sim.Max(s.now, sim.Time(r.CompleteNS))
	body := r.Encode()
	// Seal the response under the GE->user meta channel.
	var ct []byte
	if s.aead != nil {
		ct = s.aead.Seal(nil, s.geMeta.Next(), body, nil)
	} else {
		ct = body
	}
	env := Envelope{SessionID: s.id, SubmitNS: r.CompleteNS, Body: ct}
	_ = e.m.OS.MQSend(s.respQ, env.Encode())
}

func (e *Enclave) dispatch(x exec, s *session, req Request, now sim.Time) Response {
	switch req.Type {
	case ReqMemAlloc:
		return e.doMemAlloc(s, req, now)
	case ReqMemFree:
		return e.doMemFree(s, req, now)
	case ReqMemcpyHtoD:
		return e.doHtoD(x, s, req, now)
	case ReqMemcpyDtoH:
		return e.doDtoH(x, s, req, now)
	case ReqLaunch:
		return e.doLaunch(x, s, req, now)
	case ReqClose:
		return e.doClose(s, now)
	case ReqManagedAlloc:
		return e.doManagedAlloc(s, req, now)
	case ReqManagedFree:
		return e.doManagedFree(s, req, now)
	default:
		return Response{Status: RespBadRequest, CompleteNS: int64(now)}
	}
}

// slotSize is the capacity of one in-VRAM staging slot.
func (s *session) slotSize() uint64 {
	slots := s.stagingSlots
	if slots == 0 {
		slots = 2
	}
	return s.stagingSize / slots
}

// nextStagingSlot rotates through the session's in-VRAM staging ring, so
// an in-flight DMA never races the crypto of another outstanding chunk
// (mirroring the user side's slotted shared-memory window). With the
// default two slots this is the classic double buffer.
func (s *session) nextStagingSlot() uint64 {
	slots := s.stagingSlots
	if slots == 0 {
		slots = 2
	}
	slot := s.staging + (s.stagingTurn%slots)*s.slotSize()
	s.stagingTurn++
	return slot
}

// --- Per-session allocation table ---------------------------------------
//
// Extents sorted by base address: ownership checks are a binary search
// (sessions issuing thousands of chunked copies hit ownsRange on every
// one), and teardown walks allocations in deterministic address order.

// allocInsert records [base, base+size). Extents never overlap: bases
// come from the shared VRAM allocator.
func (s *session) allocInsert(base, size uint64) {
	i := sort.Search(len(s.allocs), func(i int) bool { return s.allocs[i].base >= base })
	s.allocs = append(s.allocs, allocExtent{})
	copy(s.allocs[i+1:], s.allocs[i:])
	s.allocs[i] = allocExtent{base: base, size: size}
}

// allocFind returns the size of the extent starting exactly at base.
func (s *session) allocFind(base uint64) (uint64, bool) {
	i := sort.Search(len(s.allocs), func(i int) bool { return s.allocs[i].base >= base })
	if i < len(s.allocs) && s.allocs[i].base == base {
		return s.allocs[i].size, true
	}
	return 0, false
}

func (s *session) allocRemove(base uint64) {
	i := sort.Search(len(s.allocs), func(i int) bool { return s.allocs[i].base >= base })
	if i < len(s.allocs) && s.allocs[i].base == base {
		s.allocs = append(s.allocs[:i], s.allocs[i+1:]...)
	}
}

// ownsRange verifies the session owns [ptr, ptr+size): the GPU enclave
// never lets one user name another user's device memory (§4.5).
func (s *session) ownsRange(ptr, size uint64) bool {
	if ptr+size < ptr {
		return false
	}
	i := sort.Search(len(s.allocs), func(i int) bool { return s.allocs[i].base > ptr })
	if i == 0 {
		return false
	}
	a := s.allocs[i-1]
	return ptr+size <= a.base+a.size
}

func (e *Enclave) doMemAlloc(s *session, req Request, now sim.Time) Response {
	pi := e.parts[s.part]
	addr, err := e.core.AllocVRAMIn(pi.VRAMBase, pi.VRAMBase+pi.VRAMSize, req.Size)
	if err != nil {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	_, now = e.core.Timeline().AcquireLabeled(sim.CPULane(int(s.id)%max(e.core.Cost().CPULanes, 1)), "mem-alloc", now, e.core.Cost().MemAllocPerCall)
	st, now, err := e.core.Submit(s.channel, now, gpu.OpBindMemory,
		gpu.BuildBindMemory(s.ctxID, addr, e.core.AllocatedSize(addr)))
	if err != nil || st != gpu.StatusOK {
		_ = e.core.FreeVRAM(addr)
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	s.allocInsert(addr, e.core.AllocatedSize(addr))
	return Response{Status: RespOK, CompleteNS: int64(now), Value: addr}
}

// doMemFree cleanses before release: the HIX runtime "must cleanse the
// deallocated global memory" to stop residual-data leaks (§4.5) — the
// security improvement over the baseline driver's free.
func (e *Enclave) doMemFree(s *session, req Request, now sim.Time) Response {
	size, ok := s.allocFind(req.Ptr)
	if !ok {
		return Response{Status: RespBadRequest, CompleteNS: int64(now)}
	}
	st, now, err := e.core.Submit(s.channel, now, gpu.OpFill,
		gpu.BuildFill(req.Ptr, size, 0, req.Flags))
	if err != nil || st != gpu.StatusOK {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	st, now, err = e.core.Submit(s.channel, now, gpu.OpUnbindMemory,
		gpu.BuildBindMemory(s.ctxID, req.Ptr, size))
	if err != nil || st != gpu.StatusOK {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	s.allocRemove(req.Ptr)
	_ = e.core.FreeVRAM(req.Ptr)
	return Response{Status: RespOK, CompleteNS: int64(now)}
}

// doHtoD implements one chunk of the single-copy host-to-device path
// (§4.4.2–§4.4.3): DMA the user's ciphertext from inter-enclave shared
// memory straight into the in-VRAM staging buffer, then run the in-GPU
// OCB decryption kernel writing plaintext to the destination. The GPU
// enclave never touches (or could even read) the plaintext.
func (e *Enclave) doHtoD(x exec, s *session, req Request, now sim.Time) Response {
	nonce := req.Nonce[:]
	ctLen := req.Len // ciphertext incl. tag
	if ctLen < ocb.TagSize || ctLen > s.slotSize() {
		return Response{Status: RespBadRequest, CompleteNS: int64(now)}
	}
	ptLen := ctLen - ocb.TagSize
	dst := req.Ptr
	if dst >= managedBase {
		var err error
		dst, now, err = e.resolveManaged(s, req.Ptr, ptLen, now, req.Flags)
		if err != nil {
			return managedErrResponse(err, now)
		}
	} else if !s.ownsRange(dst, ptLen) {
		return Response{Status: RespBadRequest, CompleteNS: int64(now)}
	}
	hostPA, err := s.seg.PhysAt(int(req.SegOff))
	if err != nil {
		return Response{Status: RespBadRequest, CompleteNS: int64(now)}
	}
	staging := s.nextStagingSlot()
	now = e.doubleCopyPenalty(x, s, now, int(ptLen), req.Flags)
	st, now, err := x.submit(s, now, gpu.OpDMAHtoD,
		gpu.BuildDMA(staging, uint64(hostPA), ctLen, req.Flags&^FlagDoubleCopy))
	if err != nil || st != gpu.StatusOK {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	st, now, err = x.submit(s, now, gpu.OpCryptoDecrypt,
		gpu.BuildCrypto(staging, dst, ctLen, s.id, nonce, req.Flags&^FlagDoubleCopy))
	if err != nil {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	if st == gpu.StatusAuthFailed {
		return Response{Status: RespAuthFailed, CompleteNS: int64(now)}
	}
	if st != gpu.StatusOK {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	return Response{Status: RespOK, CompleteNS: int64(now)}
}

// doDtoH is the reverse single-copy path: in-GPU OCB encryption into
// staging, then DMA of the ciphertext to inter-enclave shared memory for
// the user enclave to open.
func (e *Enclave) doDtoH(x exec, s *session, req Request, now sim.Time) Response {
	nonce := req.Nonce[:]
	ptLen := req.Len
	if ptLen == 0 || ptLen+ocb.TagSize > s.slotSize() {
		return Response{Status: RespBadRequest, CompleteNS: int64(now)}
	}
	src := req.Ptr
	if src >= managedBase {
		var err error
		src, now, err = e.resolveManaged(s, req.Ptr, ptLen, now, req.Flags)
		if err != nil {
			return managedErrResponse(err, now)
		}
	} else if !s.ownsRange(src, ptLen) {
		return Response{Status: RespBadRequest, CompleteNS: int64(now)}
	}
	hostPA, err := s.seg.PhysAt(int(req.SegOff))
	if err != nil {
		return Response{Status: RespBadRequest, CompleteNS: int64(now)}
	}
	staging := s.nextStagingSlot()
	now = e.doubleCopyPenalty(x, s, now, int(ptLen), req.Flags)
	st, now, err := x.submit(s, now, gpu.OpCryptoEncrypt,
		gpu.BuildCrypto(src, staging, ptLen, s.id, nonce, req.Flags&^FlagDoubleCopy))
	if err != nil || st != gpu.StatusOK {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	st, now, err = x.submit(s, now, gpu.OpDMADtoH,
		gpu.BuildDMA(staging, uint64(hostPA), ptLen+ocb.TagSize, req.Flags&^FlagDoubleCopy))
	if err != nil || st != gpu.StatusOK {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	return Response{Status: RespOK, CompleteNS: int64(now)}
}

func (e *Enclave) doLaunch(x exec, s *session, req Request, now sim.Time) Response {
	// Translate managed handles among the kernel parameters to resident
	// VRAM addresses, paging buffers in as needed (the unified-memory
	// convenience of the demand-paging extension). Requests carrying
	// managed handles are serial-only, so paging always runs live.
	params := req.Params
	for i, p := range params {
		if p < managedBase {
			continue
		}
		b, off, ok := s.managedLookup(p)
		if !ok {
			continue // not a managed handle of this session
		}
		var err error
		now, err = e.ensureResident(b, now, req.Flags)
		if err != nil {
			return managedErrResponse(err, now)
		}
		params[i] = b.vram + off
	}
	st, now, err := x.submit(s, now, gpu.OpLaunch,
		gpu.BuildLaunch(req.Kernel, params, req.Flags))
	if err != nil || st != gpu.StatusOK {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	return Response{Status: RespOK, CompleteNS: int64(now)}
}

// doClose tears a session down: cleanse and free every allocation plus
// the staging buffer, destroy the GPU context, release the channel.
// Cleansing walks allocations in ascending address order — teardown work
// lands on the timeline deterministically — and any cleanse or release
// failure surfaces in the response status instead of being swallowed
// (the user must know if residual data may remain, §4.5).
func (e *Enclave) doClose(s *session, now sim.Time) Response {
	status := RespOK
	for _, a := range s.allocs {
		st, n2, err := e.core.Submit(s.channel, now, gpu.OpFill, gpu.BuildFill(a.base, a.size, 0, 0))
		if err != nil || st != gpu.StatusOK {
			status = RespError
		} else {
			now = n2
		}
		if err := e.core.FreeVRAM(a.base); err != nil {
			status = RespError
		}
	}
	s.allocs = nil
	for _, b := range append([]*managedBuf(nil), s.managed...) {
		r := e.doManagedFree(s, Request{Ptr: b.handle}, now)
		now = sim.Max(now, sim.Time(r.CompleteNS))
		if r.Status != RespOK {
			status = RespError
		}
	}
	if s.staging != 0 || s.stagingSize != 0 {
		st, n2, err := e.core.Submit(s.channel, now, gpu.OpFill,
			gpu.BuildFill(s.staging, s.stagingSize, 0, 0))
		if err != nil || st != gpu.StatusOK {
			status = RespError
		} else {
			now = n2
		}
		if err := e.core.FreeVRAM(s.staging); err != nil {
			status = RespError
		}
	}
	_, now, _ = e.core.Submit(s.channel, now, gpu.OpDestroyContext, gpu.BuildDestroyContext(s.ctxID))
	e.mu.Lock()
	delete(e.sessions, s.id)
	delete(e.channels, s.channel)
	e.partSessions[s.part]--
	e.mu.Unlock()
	// The transport segment holds only ciphertext, so it needs release,
	// not cleansing. Leaving it allocated leaks its frames for the
	// machine's lifetime — fatal for a server opening one session per
	// connection.
	e.m.OS.ShmDestroy(s.seg)
	s.active = false
	return Response{Status: status, CompleteNS: int64(now)}
}

// SessionCount reports live sessions (diagnostics).
func (e *Enclave) SessionCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sessions)
}

// sessionByID is used by tests within the package.
func (e *Enclave) sessionByID(id uint32) (*session, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSession, id)
	}
	return s, nil
}
