package hix

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
	"sync/atomic"

	"repro/internal/attest"
	"repro/internal/gdev"
	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/ocb"
	"repro/internal/osim"
	"repro/internal/pcie"
	"repro/internal/sgx"
	"repro/internal/sim"
)

// GPU enclave errors.
var (
	ErrEnclaveDead  = errors.New("hix: GPU enclave terminated")
	ErrBIOSMismatch = errors.New("hix: GPU BIOS measurement mismatch")
	// ErrRoutingMismatch indicates the PCIe routing configuration was
	// modified before the GPU enclave launched (§4.3.2).
	ErrRoutingMismatch = errors.New("hix: PCIe routing measurement mismatch")
	ErrNoSession       = errors.New("hix: no such session")
)

// DefaultDriverImage is the measured "binary" of the GPU-enclave driver.
// In the real system this is the refactored Gdev driver code loaded page
// by page with EADD; here a deterministic blob stands in so MRENCLAVE is
// stable and the vendor endorsement is meaningful.
func DefaultDriverImage() []byte {
	img := make([]byte, 3*mem.PageSize)
	copy(img, []byte("HIX GPU-enclave driver build 1.0 (refactored Gdev core)"))
	for i := 256; i < len(img); i++ {
		img[i] = byte(i*13 + 7)
	}
	return img
}

// Config configures GPU-enclave launch.
type Config struct {
	Machine *machine.Machine
	// Vendor endorses the enclave measurement for remote attestation.
	// Required.
	Vendor *attest.SigningAuthority
	// DriverImage overrides the measured driver blob.
	DriverImage []byte
	// ExpectedBIOS pins the GPU BIOS measurement; zero means
	// trust-on-first-measure (the measurement is still recorded and
	// reported).
	ExpectedBIOS attest.Measurement
	// ExpectedRouting pins the PCIe routing measurement (§4.3.2): a
	// pre-launch rerouting of the fabric (BAR moves, bridge-window
	// changes) makes launch fail instead of sealing a compromised
	// path. Zero means measure-and-report.
	ExpectedRouting attest.Measurement
	// SessionSegmentBytes sizes each session's inter-enclave shared
	// segment (default 32 MiB).
	SessionSegmentBytes uint64
	// StagingSlots sets how many chunk-sized slots each session's in-VRAM
	// staging ring holds (default 2, the classic double buffer). Clients
	// using a wider request window (hixrt Session.WindowSlots) need at
	// least as many slots here so a window of in-flight chunks never
	// overwrites a slot whose DMA or crypto is still pending.
	StagingSlots int
	// GPU selects which GPU this enclave claims on a multi-GPU machine
	// (zero value = the primary GPU). One GPU enclave exists per GPU;
	// PCIe peer-to-peer between them is out of scope (§5.6).
	GPU pcie.BDF
	// ServeWorkers bounds how many sessions Serve prepares in parallel
	// during its data phase (default 1, fully serial). Any value yields
	// the same simulated schedule: timing is replayed serially in
	// canonical session order regardless of worker count.
	ServeWorkers int
}

// Enclave is the running GPU enclave: the sole owner and operator of the
// GPU (§4.2).
type Enclave struct {
	m       *machine.Machine
	gpu     *gpu.Device
	gpuBDF  pcie.BDF
	proc    *osim.Process
	enclID  uint64
	measure attest.Measurement
	tok     *sgx.Token
	core    *gdev.Core
	vendor  *attest.SigningAuthority

	bar0VA, bar1VA, romVA mmu.VirtAddr
	romSize               uint64

	biosMeasure  attest.Measurement
	routeMeasure attest.Measurement
	endorsement  attest.Endorsement

	segBytes     uint64
	stagingSlots uint64
	serveWorkers int

	// serveMu serializes Serve invocations: the two-phase engine assumes
	// exclusive ownership of the session queues between its phases.
	serveMu sync.Mutex

	// stats counts wakeups/batches/requests (see ServeStats). Atomics:
	// bumped under serveMu but read concurrently by expvar exporters.
	stats struct {
		wakeups      atomic.Int64
		emptyWakeups atomic.Int64
		batches      atomic.Int64
		requests     atomic.Int64
	}

	// parts is the device's partition table (immutable after Launch);
	// partSessions counts live sessions per partition (guarded by mu).
	parts        []gpu.PartitionInfo
	partSessions []int

	mu          sync.Mutex
	sessions    map[uint32]*session
	nextSID     uint32
	channels    map[int]bool
	dead        bool
	now         sim.Time // enclave-global cursor for setup work
	nextManaged uint64   // managed-handle bump allocator
	paging      ManagedStats
}

// session is the GPU enclave's per-user state (§4.5: one GPU context and
// one key per user enclave).
type session struct {
	id      uint32
	ctxID   uint32
	channel int
	part    int // device partition the session's channel belongs to
	aead    *ocb.AEAD
	dh      *attest.DHParty

	seg    *osim.SharedSegment
	reqQ   int
	respQ  int
	segVA  mmu.VirtAddr // unused placeholder for symmetry; data moves by DMA
	active bool

	// staging is the in-VRAM ciphertext landing zone for the
	// single-copy path (§4.4.2), split into stagingSlots slots used
	// round-robin; two slots double-buffer, more form the ring backing
	// the client's batched request window.
	staging      uint64
	stagingSize  uint64
	stagingSlots uint64
	stagingTurn  uint64

	// Directed meta-channel nonce sequences; the receiver's counter
	// advances in lockstep, so replay or reorder fails authentication.
	// Bulk-data nonces arrive inside the authenticated request instead.
	userMeta *attest.NonceSequence // consumed when opening requests
	geMeta   *attest.NonceSequence // used when sealing responses

	// allocs is the session's device allocations as extents sorted by
	// base address: ownership checks binary-search it, and teardown
	// cleanses in deterministic address order.
	allocs []allocExtent
	// managed holds demand-paged allocations (paging.go) sorted by
	// handle; managedNonce feeds eviction-writeback encryption.
	managed      []*managedBuf
	managedNonce *attest.NonceSequence
	now          sim.Time // server-side session cursor
}

// allocExtent is one owned device-memory extent.
type allocExtent struct{ base, size uint64 }

// enclaveMMIO reaches the GPU BARs through TGMR-validated enclave
// memory accesses.
type enclaveMMIO struct {
	e *Enclave
	// read/write are bound to the enclave token at launch.
	read  func(va mmu.VirtAddr, p []byte) error
	write func(va mmu.VirtAddr, p []byte) error
}

func (a *enclaveMMIO) ReadBar0(off uint64, p []byte) error {
	return a.read(a.e.bar0VA+mmu.VirtAddr(off), p)
}

func (a *enclaveMMIO) WriteBar0(off uint64, p []byte) error {
	return a.write(a.e.bar0VA+mmu.VirtAddr(off), p)
}

func (a *enclaveMMIO) ReadBar1(off uint64, p []byte) error {
	return a.read(a.e.bar1VA+mmu.VirtAddr(off), p)
}

func (a *enclaveMMIO) WriteBar1(off uint64, p []byte) error {
	return a.write(a.e.bar1VA+mmu.VirtAddr(off), p)
}

// Launch builds and starts the GPU enclave, performing the full secure
// initialization of §4.2: enclave construction and measurement, EGCREATE
// (GPU registration + MMIO lockdown), EGADD registration of every MMIO
// page, routing measurement, GPU BIOS measurement, and a device reset to
// cleanse pre-existing state.
func Launch(cfg Config) (*Enclave, error) {
	if cfg.Machine == nil || cfg.Vendor == nil {
		return nil, errors.New("hix: machine and vendor required")
	}
	m := cfg.Machine
	img := cfg.DriverImage
	if img == nil {
		img = DefaultDriverImage()
	}
	if cfg.SessionSegmentBytes == 0 {
		cfg.SessionSegmentBytes = 32 << 20
	}
	if cfg.StagingSlots < 2 {
		cfg.StagingSlots = 2
	}
	if cfg.ServeWorkers < 1 {
		cfg.ServeWorkers = 1
	}

	bdf := cfg.GPU
	if (bdf == pcie.BDF{}) {
		bdf = m.GPUBDF
	}
	dev, ok := deviceFor(m, bdf)
	if !ok {
		return nil, fmt.Errorf("hix: no GPU at %s", bdf)
	}
	e := &Enclave{
		m:            m,
		gpu:          dev,
		gpuBDF:       bdf,
		vendor:       cfg.Vendor,
		segBytes:     cfg.SessionSegmentBytes,
		stagingSlots: uint64(cfg.StagingSlots),
		serveWorkers: cfg.ServeWorkers,
		sessions:     make(map[uint32]*session),
		channels:     make(map[int]bool),
	}
	e.proc = m.OS.NewProcess()

	// Build the enclave: EADD the driver image page by page.
	const elBase = 0x100_0000
	pages := (len(img) + mem.PageSize - 1) / mem.PageSize
	encl, err := m.CPU.ECreate(e.proc.PID, elBase, uint64(pages)*mem.PageSize)
	if err != nil {
		return nil, err
	}
	for i := 0; i < pages; i++ {
		lo := i * mem.PageSize
		hi := lo + mem.PageSize
		if hi > len(img) {
			hi = len(img)
		}
		frame, err := m.CPU.EAdd(encl.ID(), mmu.VirtAddr(elBase+lo), img[lo:hi])
		if err != nil {
			return nil, err
		}
		e.proc.PT.Map(mmu.VirtAddr(elBase+lo), mmu.PTE{Frame: frame, Writable: true, User: true})
	}
	if err := m.CPU.EInit(encl.ID()); err != nil {
		return nil, err
	}
	tok, err := m.CPU.EEnter(encl.ID(), e.proc.PT)
	if err != nil {
		return nil, err
	}
	e.enclID = encl.ID()
	e.measure = encl.Measurement()
	e.tok = tok
	e.endorsement = cfg.Vendor.Endorse(encl.Measurement())

	// EGCREATE: claim the GPU, engage lockdown.
	if err := m.CPU.EGCreate(tok, bdf); err != nil {
		return nil, err
	}

	// Map and register (EGADD) the GPU's MMIO: BAR0, BAR1, ROM.
	gcfg := dev.Config()
	bar0, bar0Size, _ := gcfg.BAR(0)
	bar1, bar1Size, _ := gcfg.BAR(1)
	romBase, romSize, _ := gcfg.ROMBAR()
	e.bar0VA, err = e.registerMMIO(bar0, bar0Size)
	if err != nil {
		return nil, err
	}
	e.bar1VA, err = e.registerMMIO(bar1, bar1Size)
	if err != nil {
		return nil, err
	}
	e.romVA, err = e.registerMMIO(romBase, romSize)
	if err != nil {
		return nil, err
	}
	e.romSize = romSize

	// Measure PCIe routing configuration (§4.3.2) through the trusted
	// root complex.
	routing, err := m.Fabric.MeasureRouting(bdf)
	if err != nil {
		return nil, err
	}
	e.routeMeasure = attest.Measure(routing)
	if !cfg.ExpectedRouting.IsZero() && e.routeMeasure != cfg.ExpectedRouting {
		return nil, fmt.Errorf("%w: got %s", ErrRoutingMismatch, e.routeMeasure)
	}

	// Measure the GPU BIOS through the enclave's own ROM mapping
	// (§4.2.2), then verify if pinned.
	bios := make([]byte, romSize)
	if err := m.CPU.Read(tok, e.romVA, bios); err != nil {
		return nil, err
	}
	e.biosMeasure = attest.Measure(bios)
	if !cfg.ExpectedBIOS.IsZero() && e.biosMeasure != cfg.ExpectedBIOS {
		return nil, fmt.Errorf("%w: got %s", ErrBIOSMismatch, e.biosMeasure)
	}

	// Driver core over the enclave MMIO path.
	mmio := &enclaveMMIO{
		e:     e,
		read:  func(va mmu.VirtAddr, p []byte) error { return m.CPU.Read(tok, va, p) },
		write: func(va mmu.VirtAddr, p []byte) error { return m.CPU.Write(tok, va, p) },
	}
	core, err := gdev.NewCore(mmio, dev.VRAMSize(), m.Timeline, m.Cost)
	if err != nil {
		return nil, err
	}
	e.core = core

	// Partition plumbing: cache the device's partition table and route
	// each channel's submission MMIO onto its partition's PCIe lane, so
	// partitions never contend on the command path. On an unpartitioned
	// device every channel stays on the shared link resource.
	e.parts = dev.Partitions()
	e.partSessions = make([]int, len(e.parts))
	for ch := 0; ch < dev.Channels(); ch++ {
		core.SetChannelLane(ch, e.parts[dev.PartitionOfChannel(ch)].PCIe)
	}

	// Reset the GPU to eliminate any pre-loaded state (§4.2.2), then
	// probe it.
	e.now, err = core.ResetDevice(e.now)
	if err != nil {
		return nil, err
	}
	e.now, err = core.Probe(e.now)
	if err != nil {
		return nil, err
	}
	return e, nil
}

// registerMMIO maps a physical MMIO window into the enclave process and
// registers every page with EGADD.
func (e *Enclave) registerMMIO(base mem.PhysAddr, size uint64) (mmu.VirtAddr, error) {
	va, err := e.m.OS.MapPhys(e.proc, base, size, true)
	if err != nil {
		return 0, err
	}
	for off := uint64(0); off < size; off += mem.PageSize {
		if err := e.m.CPU.EGAdd(e.tok, va+mmu.VirtAddr(off), base+mem.PhysAddr(off)); err != nil {
			return 0, err
		}
	}
	return va, nil
}

// entropy resolves the enclave's ephemeral-key source: the platform's
// (deterministic on seeded machines), else the host crypto RNG.
func (e *Enclave) entropy() io.Reader {
	if e.m.Entropy != nil {
		return e.m.Entropy
	}
	return rand.Reader
}

// Measurement returns the GPU enclave's MRENCLAVE, which users verify
// via remote attestation before trusting it.
func (e *Enclave) Measurement() attest.Measurement { return e.measure }

// Endorsement returns the vendor's signature over the measurement.
func (e *Enclave) Endorsement() attest.Endorsement { return e.endorsement }

// BIOSMeasurement returns the measured GPU BIOS hash (§4.2.2).
func (e *Enclave) BIOSMeasurement() attest.Measurement { return e.biosMeasure }

// RoutingMeasurement returns the measured PCIe routing configuration
// (§4.3.2).
func (e *Enclave) RoutingMeasurement() attest.Measurement { return e.routeMeasure }

// RegisterKernel loads a GPU kernel module into the device through the
// enclave (the HIX analogue of cuModuleLoad; module loading is a GPU
// enclave service).
func (e *Enclave) RegisterKernel(k *gpu.Kernel) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return ErrEnclaveDead
	}
	return e.gpu.RegisterKernel(k)
}

// claimChannel reserves a free channel inside one partition's block.
// The caller holds e.mu.
func (e *Enclave) claimChannel(part int) (int, error) {
	pi := e.parts[part]
	for ch := pi.ChanFirst; ch < pi.ChanFirst+pi.ChanCount; ch++ {
		if !e.channels[ch] {
			e.channels[ch] = true
			return ch, nil
		}
	}
	return 0, fmt.Errorf("hix: out of GPU channels on partition %d", part)
}

// pickPartition resolves a Hello's placement request: an explicit
// 1-based partition index, or the partition with the fewest live
// sessions (ties to the lowest index). The caller holds e.mu.
func (e *Enclave) pickPartition(requested int) (int, error) {
	if requested != 0 {
		if requested < 1 || requested > len(e.parts) {
			return 0, fmt.Errorf("hix: partition %d out of range [1,%d]", requested, len(e.parts))
		}
		return requested - 1, nil
	}
	best := 0
	for i := 1; i < len(e.partSessions); i++ {
		if e.partSessions[i] < e.partSessions[best] {
			best = i
		}
	}
	return best, nil
}

// HandleHello serves the session-setup Request (§4.4.1). It verifies the
// user's local-attestation report, obtains the GPU's DH share over
// trusted MMIO, forwards the ring elements, and prepares the transport
// resources.
func (e *Enclave) HandleHello(h HelloRequest) (HelloResponse, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return HelloResponse{}, ErrEnclaveDead
	}
	// Verify the user enclave's report (EGETKEY+MAC under the hood) and
	// the binding of the DH share.
	ok, err := e.m.CPU.EVerifyReport(e.tok, h.Report)
	if err != nil {
		return HelloResponse{}, err
	}
	if !ok {
		return HelloResponse{}, fmt.Errorf("%w: user report rejected", ErrAuth)
	}
	if !bytes.Equal(h.Report.ReportData[:32], ReportDataFor(h.DHPublic)[:32]) {
		return HelloResponse{}, fmt.Errorf("%w: DH share not bound to report", ErrAuth)
	}

	now := sim.Max(e.now, sim.Time(h.SubmitNS))
	// One-time attestation + key-exchange CPU cost.
	_, now = e.core.Timeline().AcquireLabeled(sim.ResCPU, "attest", now, e.core.Cost().AttestKeyExch)

	e.nextSID++
	sid := e.nextSID
	part, err := e.pickPartition(h.Partition)
	if err != nil {
		return HelloResponse{}, err
	}
	ch, err := e.claimChannel(part)
	if err != nil {
		return HelloResponse{}, err
	}

	// GPU enclave's own DH share (party b).
	b, err := attest.NewDHParty(e.entropy())
	if err != nil {
		return HelloResponse{}, err
	}

	// Obtain g^c from the GPU over trusted MMIO.
	st, now2, err := e.core.Submit(ch, now, gpu.OpDHPublic, gpu.BuildDHPublic(sid))
	if err != nil {
		return HelloResponse{}, err
	}
	if err := st.Err(); err != nil {
		return HelloResponse{}, err
	}
	now = now2
	resp := make([]byte, 4+gpu.DHElementSize)
	if err := e.core.ReadResponse(ch, resp); err != nil {
		return HelloResponse{}, err
	}
	gc := new(big.Int).SetBytes(resp[4 : 4+gpu.DHElementSize])

	// Ring step: g^ab to the GPU (it finishes to g^abc), g^bc to the
	// user (they finish to g^abc).
	ga := new(big.Int).SetBytes(h.DHPublic)
	gab, err := b.Mix(ga)
	if err != nil {
		return HelloResponse{}, fmt.Errorf("%w: %v", ErrAuth, err)
	}
	elem := make([]byte, gpu.DHElementSize)
	gab.FillBytes(elem)
	st, now, err = e.core.Submit(ch, now, gpu.OpDHFinish, gpu.BuildDHElement(sid, elem))
	if err != nil {
		return HelloResponse{}, err
	}
	if err := st.Err(); err != nil {
		return HelloResponse{}, err
	}
	gbc, err := b.Mix(gc)
	if err != nil {
		return HelloResponse{}, fmt.Errorf("%w: %v", ErrAuth, err)
	}

	// Session transport: queues + shared segment from the (untrusted)
	// OS.
	seg, err := e.m.OS.ShmCreate(e.segBytes)
	if err != nil {
		return HelloResponse{}, err
	}
	s := &session{
		id:      sid,
		ctxID:   sid,
		channel: ch,
		part:    part,
		dh:      b,
		seg:     seg,
		reqQ:    e.m.OS.MQCreate(),
		respQ:   e.m.OS.MQCreate(),
		now:     now,
	}
	e.sessions[sid] = s
	e.partSessions[part]++

	// GPU enclave's counter-report, binding g^c||g^bc.
	gcB := make([]byte, gpu.DHElementSize)
	gc.FillBytes(gcB)
	gbcB := make([]byte, gpu.DHElementSize)
	gbc.FillBytes(gbcB)
	report, err := e.m.CPU.EReport(e.tok, h.Report.Source, ReportDataFor(gcB, gbcB))
	if err != nil {
		return HelloResponse{}, err
	}
	return HelloResponse{
		SessionID:   sid,
		Report:      report,
		Endorsement: e.endorsement,
		GPUPublic:   gcB,
		MixedBC:     gbcB,
		ReqQueue:    s.reqQ,
		RespQueue:   s.respQ,
		SegmentID:   seg.ID,
		SegmentSize: seg.Size,
		CompleteNS:  int64(s.now),
		Partition:   part,
	}, nil
}

// HandleFinish completes session setup: derive the session key from the
// user's mixed element, verify key confirmation, create the session's
// GPU context and in-VRAM staging buffer.
func (e *Enclave) HandleFinish(f HelloFinish) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return ErrEnclaveDead
	}
	s, ok := e.sessions[f.SessionID]
	if !ok {
		return ErrNoSession
	}
	if s.active {
		return fmt.Errorf("%w: session already active", ErrSessionState)
	}
	gca := new(big.Int).SetBytes(f.MixedCA)
	shared, err := s.dh.Mix(gca)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrAuth, err)
	}
	key := attest.SessionKey(shared)
	aead, err := ocb.New(key[:])
	if err != nil {
		return err
	}
	s.aead = aead
	s.userMeta = attest.NewNonceSequence(NonceChannel(s.id, NonceUserMeta))
	s.geMeta = attest.NewNonceSequence(NonceChannel(s.id, NonceGEMeta))
	s.managedNonce = newManagedNonce(s.id)

	// Key confirmation proves the user derived the same key.
	confirmNonce := s.userMeta.Next()
	pt, err := aead.Open(nil, confirmNonce, f.Confirm, nil)
	if err != nil || !bytes.Equal(pt, KeyConfirmation) {
		delete(e.sessions, f.SessionID)
		delete(e.channels, s.channel)
		e.partSessions[s.part]--
		e.m.OS.ShmDestroy(s.seg)
		return fmt.Errorf("%w: key confirmation failed", ErrAuth)
	}

	now := sim.Max(s.now, sim.Time(f.SubmitNS))
	// Create the session's isolated GPU context (§4.5) and staging.
	st, now, err := e.core.Submit(s.channel, now, gpu.OpCreateContext, gpu.BuildCreateContext(s.ctxID))
	if err != nil || st.Err() != nil {
		return firstErr(err, st.Err())
	}
	st, now, err = e.core.Submit(s.channel, now, gpu.OpBindChannel, gpu.BuildBindChannel(s.ctxID))
	if err != nil || st.Err() != nil {
		return firstErr(err, st.Err())
	}
	s.stagingSlots = e.stagingSlots
	s.stagingSize = s.stagingSlots * (uint64(e.core.Cost().CryptoChunk) + ocb.TagSize)
	pi := e.parts[s.part]
	s.staging, err = e.core.AllocVRAMIn(pi.VRAMBase, pi.VRAMBase+pi.VRAMSize, s.stagingSize)
	if err != nil {
		return err
	}
	st, now, err = e.core.Submit(s.channel, now, gpu.OpBindMemory,
		gpu.BuildBindMemory(s.ctxID, s.staging, e.core.AllocatedSize(s.staging)))
	if err != nil || st.Err() != nil {
		return firstErr(err, st.Err())
	}
	s.now = now
	s.active = true
	return nil
}

// HandleResume re-establishes a session from resumption state in
// O(symmetric-crypto): no report verification, no DH parties, no
// OpDHPublic/OpDHFinish submits, no AttestKeyExch charge — the caller
// (netserve) already authenticated the state by opening the sealed
// ticket. The original session ID is restored so the nonce channels
// (NonceChannel derives from sid) and therefore the OCB ciphertext
// streams continue byte-identical to the original session.
func (e *Enclave) HandleResume(r ResumeRequest) (ResumeResponse, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return ResumeResponse{}, ErrEnclaveDead
	}
	sid := r.SessionID
	if sid == 0 {
		return ResumeResponse{}, fmt.Errorf("%w: resume without session id", ErrSessionState)
	}
	if _, live := e.sessions[sid]; live {
		return ResumeResponse{}, fmt.Errorf("%w: session %d still live", ErrSessionState, sid)
	}
	part, err := e.pickPartition(r.Partition)
	if err != nil {
		return ResumeResponse{}, err
	}
	ch, err := e.claimChannel(part)
	if err != nil {
		return ResumeResponse{}, err
	}
	unclaim := func() { delete(e.channels, ch) }

	aead, err := ocb.New(r.Key[:])
	if err != nil {
		unclaim()
		return ResumeResponse{}, err
	}
	userMeta := attest.NewNonceSequence(NonceChannel(sid, NonceUserMeta))
	// Key confirmation consumes user-meta nonce 0, exactly as the full
	// handshake's HandleFinish does, so the request counter starts at 1
	// on both paths.
	pt, err := aead.Open(nil, userMeta.Next(), r.Confirm, nil)
	if err != nil || !bytes.Equal(pt, KeyConfirmation) {
		unclaim()
		return ResumeResponse{}, fmt.Errorf("%w: resume key confirmation failed", ErrAuth)
	}

	seg, err := e.m.OS.ShmCreate(e.segBytes)
	if err != nil {
		unclaim()
		return ResumeResponse{}, err
	}
	s := &session{
		id:           sid,
		ctxID:        sid,
		channel:      ch,
		part:         part,
		seg:          seg,
		reqQ:         e.m.OS.MQCreate(),
		respQ:        e.m.OS.MQCreate(),
		aead:         aead,
		userMeta:     userMeta,
		geMeta:       attest.NewNonceSequence(NonceChannel(sid, NonceGEMeta)),
		managedNonce: newManagedNonce(sid),
	}
	fail := func(err error) (ResumeResponse, error) {
		unclaim()
		e.m.OS.ShmDestroy(seg)
		return ResumeResponse{}, err
	}

	now := sim.Max(e.now, sim.Time(r.SubmitNS))
	st, now, err := e.core.Submit(ch, now, gpu.OpCreateContext, gpu.BuildCreateContext(s.ctxID))
	if err != nil || st.Err() != nil {
		return fail(firstErr(err, st.Err()))
	}
	st, now, err = e.core.Submit(ch, now, gpu.OpBindChannel, gpu.BuildBindChannel(s.ctxID))
	if err != nil || st.Err() != nil {
		return fail(firstErr(err, st.Err()))
	}
	s.stagingSlots = e.stagingSlots
	s.stagingSize = s.stagingSlots * (uint64(e.core.Cost().CryptoChunk) + ocb.TagSize)
	pi := e.parts[part]
	s.staging, err = e.core.AllocVRAMIn(pi.VRAMBase, pi.VRAMBase+pi.VRAMSize, s.stagingSize)
	if err != nil {
		return fail(err)
	}
	st, now, err = e.core.Submit(ch, now, gpu.OpBindMemory,
		gpu.BuildBindMemory(s.ctxID, s.staging, e.core.AllocatedSize(s.staging)))
	if err != nil || st.Err() != nil {
		return fail(firstErr(err, st.Err()))
	}
	s.now = now
	s.active = true
	e.sessions[sid] = s
	e.partSessions[part]++
	// Keep fresh session IDs monotonic past any restored one so a later
	// full handshake can never collide with a resumed session.
	if sid > e.nextSID {
		e.nextSID = sid
	}
	return ResumeResponse{
		SessionID:   sid,
		ReqQueue:    s.reqQ,
		RespQueue:   s.respQ,
		SegmentID:   seg.ID,
		SegmentSize: seg.Size,
		CompleteNS:  int64(s.now),
		Partition:   part,
	}, nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Session transport identifiers, exposed for the user runtime and the
// attack harness (the adversary knows all OS resource IDs anyway).
func (e *Enclave) SessionTransport(sid uint32) (reqQ, respQ, segID int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.sessions[sid]
	if !ok {
		return 0, 0, 0, ErrNoSession
	}
	return s.reqQ, s.respQ, s.seg.ID, nil
}

// Kill models the adversary forcefully terminating the GPU enclave
// process (§4.2.3). GECS/TGMR registrations survive inside the
// processor, sealing the GPU.
func (e *Enclave) Kill() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dead = true
	_ = e.m.CPU.EKill(e.enclID)
}

// Shutdown is graceful termination: abort GPU work, cleanse the GPU, and
// return it to the OS (§4.2.3).
func (e *Enclave) Shutdown() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return ErrEnclaveDead
	}
	// Cleanse device state, then release ownership.
	if _, err := e.core.ResetDevice(e.now); err != nil {
		return err
	}
	if err := e.m.CPU.EGDestroy(e.tok); err != nil {
		return err
	}
	e.dead = true
	e.sessions = make(map[uint32]*session)
	return nil
}

// GPUBDF reports which GPU this enclave owns.
func (e *Enclave) GPUBDF() pcie.BDF { return e.gpuBDF }

// GPUName reports the owned device's diagnostic name.
func (e *Enclave) GPUName() string { return e.gpu.Name() }

// DeviceIndex reports the owned device's fleet index.
func (e *Enclave) DeviceIndex() int { return e.gpu.DeviceIndex() }

// Partitions returns the owned device's partition table.
func (e *Enclave) Partitions() []gpu.PartitionInfo {
	return append([]gpu.PartitionInfo(nil), e.parts...)
}

// PartitionSessions returns the live session count per partition.
func (e *Enclave) PartitionSessions() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]int(nil), e.partSessions...)
}

// deviceFor finds the device object for a BDF on the machine.
func deviceFor(m *machine.Machine, bdf pcie.BDF) (*gpu.Device, bool) {
	for i, b := range m.GPUBDFs {
		if b == bdf {
			return m.GPUs[i], true
		}
	}
	return nil, false
}

// Dead reports whether the enclave has terminated.
func (e *Enclave) Dead() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dead
}
