package hix

import (
	"errors"
	"testing"

	"repro/internal/attest"
	"repro/internal/machine"
	"repro/internal/sgx"
)

func newMultiGPUMachine(t *testing.T) (*machine.Machine, *attest.SigningAuthority) {
	t.Helper()
	m, err := machine.New(machine.Config{
		DRAMBytes:    256 << 20,
		EPCBytes:     16 << 20,
		VRAMBytes:    64 << 20,
		Channels:     4,
		GPUs:         2,
		PlatformSeed: "multigpu-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	vendor, err := attest.NewSigningAuthority()
	if err != nil {
		t.Fatal(err)
	}
	return m, vendor
}

func TestTwoGPUsEnumerated(t *testing.T) {
	m, _ := newMultiGPUMachine(t)
	if len(m.GPUs) != 2 || len(m.GPUBDFs) != 2 {
		t.Fatalf("GPUs = %d, BDFs = %d", len(m.GPUs), len(m.GPUBDFs))
	}
	if m.GPUBDFs[0] == m.GPUBDFs[1] {
		t.Fatal("both GPUs at the same BDF")
	}
	if m.GPU != m.GPUs[0] || m.GPUBDF != m.GPUBDFs[0] {
		t.Fatal("primary GPU aliases broken")
	}
	// Both are real endpoints with distinct BAR windows.
	b0, _, _ := m.GPUs[0].Config().BAR(0)
	b1, _, _ := m.GPUs[1].Config().BAR(0)
	if b0 == b1 {
		t.Fatal("overlapping BAR assignments")
	}
}

func TestOneGPUEnclavePerGPU(t *testing.T) {
	m, vendor := newMultiGPUMachine(t)
	ge0, err := Launch(Config{Machine: m, Vendor: vendor})
	if err != nil {
		t.Fatal(err)
	}
	if ge0.GPUBDF() != m.GPUBDFs[0] {
		t.Fatalf("default enclave claimed %s", ge0.GPUBDF())
	}
	// A second enclave for the second GPU works...
	ge1, err := Launch(Config{Machine: m, Vendor: vendor, GPU: m.GPUBDFs[1]})
	if err != nil {
		t.Fatalf("second GPU enclave: %v", err)
	}
	if ge1.GPUBDF() != m.GPUBDFs[1] {
		t.Fatalf("second enclave claimed %s", ge1.GPUBDF())
	}
	// ...but a third enclave has no GPU left.
	if _, err := Launch(Config{Machine: m, Vendor: vendor, GPU: m.GPUBDFs[1]}); !errors.Is(err, sgx.ErrGPUOwned) {
		t.Fatalf("third enclave error = %v", err)
	}
	// Both GPUs are reset and independently measured.
	if m.GPUs[0].ResetCount() == 0 || m.GPUs[1].ResetCount() == 0 {
		t.Fatal("GPU not reset during launch")
	}
	if ge0.BIOSMeasurement() == ge1.BIOSMeasurement() {
		t.Fatal("distinct GPUs measured identically (BIOS embeds device name)")
	}
	// Lockdown covers both device paths.
	for _, bdf := range m.GPUBDFs {
		if err := m.Fabric.ConfigWrite32(bdf, 0x10, 0xDEAD0000); err == nil {
			t.Fatalf("BAR of %s writable after lockdown", bdf)
		}
	}
}

func TestUnknownGPURejected(t *testing.T) {
	m, vendor := newMultiGPUMachine(t)
	bad := m.GPUBDFs[0]
	bad.Bus += 7
	if _, err := Launch(Config{Machine: m, Vendor: vendor, GPU: bad}); err == nil {
		t.Fatal("enclave launched for nonexistent GPU")
	}
}
