package hix

import (
	"fmt"
	"sort"

	"repro/internal/attest"
	"repro/internal/gpu"
	"repro/internal/ocb"
	"repro/internal/osim"
	"repro/internal/sim"
)

// Secure demand paging — the §5.6 future-work feature ("Supporting such
// demand paging requires additional encryption and integrity protection
// for the pages before writing back to the main memory. ... Adding the
// demand paging will be our future work.").
//
// Managed buffers let sessions oversubscribe device memory: the GPU
// enclave transparently evicts least-recently-used managed buffers to an
// untrusted host backing store and pages them back in on use. Before a
// buffer leaves the GPU it is encrypted and MACed by the in-GPU OCB
// kernel under the owning session's key; on page-in the MAC is verified,
// so the privileged adversary can neither read nor undetectably modify
// swapped-out device memory.
//
// Granularity is whole buffers (the Gdev lineage's driver-managed
// swapping) rather than hardware page faults, which the simulated GPU —
// like the paper's GTX 580 — does not have.

// managedBase is the virtual device-address region managed handles live
// in; the GPU enclave translates them to resident VRAM addresses.
const managedBase uint64 = 1 << 40

// managedBuf is one managed allocation.
type managedBuf struct {
	owner    *session
	handle   uint64 // virtual address (managedBase + offset)
	size     uint64
	resident bool
	vram     uint64 // valid while resident
	backing  *osim.SharedSegment
	// chunkNonces holds, per chunk, the nonce used by the most recent
	// eviction; page-in opens with exactly these.
	chunkNonces [][]byte
	hasData     bool // backing holds a valid evicted image
	lastUse     sim.Time
}

// ManagedStats reports paging activity for tests and benchmarks.
type ManagedStats struct {
	Evictions uint64
	PageIns   uint64
}

// ManagedStats returns the enclave-wide paging counters.
func (e *Enclave) ManagedStats() ManagedStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.paging
}

// managedLookup resolves a managed virtual address within the session to
// its buffer and offset. s.managed is sorted by handle and buffers never
// overlap (handles come from a bump allocator), so this is a binary
// search: the kernel-launch path translates every managed parameter of
// every launch through here.
func (s *session) managedLookup(va uint64) (*managedBuf, uint64, bool) {
	i := sort.Search(len(s.managed), func(i int) bool { return s.managed[i].handle > va })
	if i == 0 {
		return nil, 0, false
	}
	b := s.managed[i-1]
	if va < b.handle+b.size {
		return b, va - b.handle, true
	}
	return nil, 0, false
}

// managedInsert adds b keeping s.managed sorted by handle.
func (s *session) managedInsert(b *managedBuf) {
	i := sort.Search(len(s.managed), func(i int) bool { return s.managed[i].handle >= b.handle })
	s.managed = append(s.managed, nil)
	copy(s.managed[i+1:], s.managed[i:])
	s.managed[i] = b
}

// managedRemove drops the buffer with the given handle, if present.
func (s *session) managedRemove(handle uint64) {
	i := sort.Search(len(s.managed), func(i int) bool { return s.managed[i].handle >= handle })
	if i < len(s.managed) && s.managed[i].handle == handle {
		s.managed = append(s.managed[:i], s.managed[i+1:]...)
	}
}

// doManagedAlloc creates a managed buffer: a handle plus an untrusted
// backing segment. Residency is established lazily on first use.
func (e *Enclave) doManagedAlloc(s *session, req Request, now sim.Time) Response {
	if req.Size == 0 || req.Size > e.gpu.VRAMSize() {
		return Response{Status: RespBadRequest, CompleteNS: int64(now)}
	}
	backing, err := e.m.OS.ShmCreate(req.Size + e.managedChunkOverhead(req.Size))
	if err != nil {
		return Response{Status: RespError, CompleteNS: int64(now)}
	}
	e.mu.Lock()
	e.nextManaged += (req.Size + 255) &^ 255
	handle := managedBase + e.nextManaged
	e.mu.Unlock()
	b := &managedBuf{owner: s, handle: handle, size: req.Size, backing: backing, lastUse: now}
	s.managedInsert(b)
	_, now = e.core.Timeline().AcquireLabeled(sim.CPULane(int(s.id)%max(e.core.Cost().CPULanes, 1)),
		"managed-alloc", now, e.core.Cost().MemAllocPerCall)
	return Response{Status: RespOK, CompleteNS: int64(now), Value: handle}
}

// managedChunkOverhead is the extra backing space for per-chunk OCB tags.
func (e *Enclave) managedChunkOverhead(size uint64) uint64 {
	chunk := uint64(e.core.Cost().CryptoChunk)
	chunks := (size + chunk - 1) / chunk
	return chunks * ocb.TagSize
}

// ensureResident pages b in (evicting LRU buffers as needed) and returns
// the completion time. The caller holds no enclave lock.
func (e *Enclave) ensureResident(b *managedBuf, now sim.Time, flags uint32) (sim.Time, error) {
	b.lastUse = now
	if b.resident {
		return now, nil
	}
	// Make room inside the owner's partition VRAM range.
	pi := e.parts[b.owner.part]
	for {
		addr, err := e.core.AllocVRAMIn(pi.VRAMBase, pi.VRAMBase+pi.VRAMSize, b.size)
		if err == nil {
			b.vram = addr
			break
		}
		victim := e.lruResident(b)
		if victim == nil {
			return now, fmt.Errorf("hix: cannot make %d bytes of device memory resident", b.size)
		}
		var verr error
		now, verr = e.evict(victim, now, flags)
		if verr != nil {
			return now, verr
		}
	}
	s := b.owner
	st, now, err := e.core.Submit(s.channel, now, gpu.OpBindMemory,
		gpu.BuildBindMemory(s.ctxID, b.vram, e.core.AllocatedSize(b.vram)))
	if err != nil || st != gpu.StatusOK {
		return now, firstErr(err, st.Err())
	}
	if b.hasData {
		// Page in: DMA each encrypted chunk from the untrusted backing
		// store and verify+decrypt it with the in-GPU OCB kernel.
		chunk := uint64(e.core.Cost().CryptoChunk)
		idx := 0
		for off := uint64(0); off < b.size; off += chunk {
			cl := chunk
			if off+cl > b.size {
				cl = b.size - off
			}
			ctLen := cl + ocb.TagSize
			staging := s.nextStagingSlot()
			hostPA, err := b.backing.PhysAt(int(off) + idx*ocb.TagSize)
			if err != nil {
				return now, err
			}
			st, now, err = e.core.Submit(s.channel, now, gpu.OpDMAHtoD,
				gpu.BuildDMA(staging, uint64(hostPA), ctLen, flags&gpu.FlagSynthetic))
			if err != nil || st != gpu.StatusOK {
				return now, firstErr(err, st.Err())
			}
			st, now, err = e.core.Submit(s.channel, now, gpu.OpCryptoDecrypt,
				gpu.BuildCrypto(staging, b.vram+off, ctLen, s.id, b.chunkNonces[idx], flags&gpu.FlagSynthetic))
			if err != nil {
				return now, err
			}
			if st == gpu.StatusAuthFailed {
				return now, fmt.Errorf("%w: swapped-out page tampered with", ErrAuth)
			}
			if st != gpu.StatusOK {
				return now, st.Err()
			}
			idx++
		}
		e.mu.Lock()
		e.paging.PageIns++
		e.mu.Unlock()
	}
	b.resident = true
	return now, nil
}

// lruResident picks the least-recently-used resident managed buffer other
// than keep, across all sessions. Sessions are scanned in id order and
// buffers in handle order, so ties break deterministically.
func (e *Enclave) lruResident(keep *managedBuf) *managedBuf {
	e.mu.Lock()
	sessions := make([]*session, 0, len(e.sessions))
	for _, s := range e.sessions {
		sessions = append(sessions, s)
	}
	e.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })
	var victim *managedBuf
	for _, s := range sessions {
		for _, b := range s.managed {
			if b == keep || !b.resident {
				continue
			}
			if victim == nil || b.lastUse < victim.lastUse {
				victim = b
			}
		}
	}
	return victim
}

// evict encrypts b's contents in-GPU, DMAs the ciphertext to the
// untrusted backing store, cleanses and releases the VRAM.
func (e *Enclave) evict(b *managedBuf, now sim.Time, flags uint32) (sim.Time, error) {
	s := b.owner
	chunk := uint64(e.core.Cost().CryptoChunk)
	chunks := int((b.size + chunk - 1) / chunk)
	b.chunkNonces = make([][]byte, 0, chunks)
	idx := 0
	for off := uint64(0); off < b.size; off += chunk {
		cl := chunk
		if off+cl > b.size {
			cl = b.size - off
		}
		nonce := s.managedNonce.Next()
		b.chunkNonces = append(b.chunkNonces, nonce)
		staging := s.nextStagingSlot()
		var st gpu.Status
		var err error
		st, now, err = e.core.Submit(s.channel, now, gpu.OpCryptoEncrypt,
			gpu.BuildCrypto(b.vram+off, staging, cl, s.id, nonce, flags&gpu.FlagSynthetic))
		if err != nil || st != gpu.StatusOK {
			return now, firstErr(err, st.Err())
		}
		hostPA, err := b.backing.PhysAt(int(off) + idx*ocb.TagSize)
		if err != nil {
			return now, err
		}
		st, now, err = e.core.Submit(s.channel, now, gpu.OpDMADtoH,
			gpu.BuildDMA(staging, uint64(hostPA), cl+ocb.TagSize, flags&gpu.FlagSynthetic))
		if err != nil || st != gpu.StatusOK {
			return now, firstErr(err, st.Err())
		}
		idx++
	}
	// Cleanse before releasing the frames to the allocator (§4.5).
	st, now, err := e.core.Submit(s.channel, now, gpu.OpFill,
		gpu.BuildFill(b.vram, b.size, 0, flags&gpu.FlagSynthetic))
	if err != nil || st != gpu.StatusOK {
		return now, firstErr(err, st.Err())
	}
	st, now, err = e.core.Submit(s.channel, now, gpu.OpUnbindMemory,
		gpu.BuildBindMemory(s.ctxID, b.vram, e.core.AllocatedSize(b.vram)))
	if err != nil || st != gpu.StatusOK {
		return now, firstErr(err, st.Err())
	}
	_ = e.core.FreeVRAM(b.vram)
	b.resident = false
	b.hasData = true
	b.vram = 0
	e.mu.Lock()
	e.paging.Evictions++
	e.mu.Unlock()
	return now, nil
}

// resolveManaged translates a device address that may be a managed handle
// into a resident VRAM address, paging in as needed. Plain addresses pass
// through untouched.
func (e *Enclave) resolveManaged(s *session, va, span uint64, now sim.Time, flags uint32) (uint64, sim.Time, error) {
	if va < managedBase {
		return va, now, nil
	}
	b, off, ok := s.managedLookup(va)
	if !ok {
		return 0, now, fmt.Errorf("hix: unknown managed address %#x", va)
	}
	if off+span > b.size {
		return 0, now, fmt.Errorf("hix: managed access %#x+%d out of bounds", va, span)
	}
	now, err := e.ensureResident(b, now, flags)
	if err != nil {
		return 0, now, err
	}
	return b.vram + off, now, nil
}

// doManagedFree releases a managed buffer: cleanse if resident, drop the
// backing store.
func (e *Enclave) doManagedFree(s *session, req Request, now sim.Time) Response {
	b, off, ok := s.managedLookup(req.Ptr)
	if !ok || off != 0 {
		return Response{Status: RespBadRequest, CompleteNS: int64(now)}
	}
	if b.resident {
		st, n2, err := e.core.Submit(s.channel, now, gpu.OpFill, gpu.BuildFill(b.vram, b.size, 0, 0))
		if err == nil && st == gpu.StatusOK {
			now = n2
		}
		st, n2, err = e.core.Submit(s.channel, now, gpu.OpUnbindMemory,
			gpu.BuildBindMemory(s.ctxID, b.vram, e.core.AllocatedSize(b.vram)))
		if err == nil && st == gpu.StatusOK {
			now = n2
		}
		_ = e.core.FreeVRAM(b.vram)
	}
	// Scrub the (ciphertext) backing image.
	zero := make([]byte, 4096)
	for off := 0; off < int(b.backing.Size); off += len(zero) {
		n := len(zero)
		if off+n > int(b.backing.Size) {
			n = int(b.backing.Size) - off
		}
		_ = e.m.OS.ShmWritePhys(b.backing, off, zero[:n])
	}
	e.m.OS.ShmDestroy(b.backing)
	s.managedRemove(b.handle)
	return Response{Status: RespOK, CompleteNS: int64(now)}
}

// newManagedNonce builds the session's managed-eviction nonce channel.
func newManagedNonce(sid uint32) *attest.NonceSequence {
	return attest.NewNonceSequence(NonceChannel(sid, NonceManaged))
}
