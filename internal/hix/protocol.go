// Package hix implements the paper's primary contribution: the GPU
// enclave (§4.2) — the GPU driver refactored out of the OS into an SGX
// enclave extended with EGCREATE/EGADD — together with the secure
// application-to-GPU communication protocol (§4.4): local attestation,
// three-party Diffie-Hellman among user enclave / GPU enclave / GPU,
// OCB-AES-protected requests over untrusted OS message queues, and the
// single-copy encrypted data path with in-GPU cryptography.
package hix

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/attest"
	"repro/internal/gpu"
)

// ReqType identifies an encrypted request from the user enclave to the
// GPU enclave. The set mirrors the CUDA driver API surface the trusted
// runtime offers (§4.4: "GPU APIs such as memory copy or GPU kernel
// launch").
type ReqType uint32

const (
	ReqMemAlloc ReqType = iota + 1
	ReqMemFree
	ReqMemcpyHtoD
	ReqMemcpyDtoH
	ReqLaunch
	ReqClose
	ReqManagedAlloc
	ReqManagedFree
)

func (r ReqType) String() string {
	switch r {
	case ReqMemAlloc:
		return "mem-alloc"
	case ReqMemFree:
		return "mem-free"
	case ReqMemcpyHtoD:
		return "memcpy-htod"
	case ReqMemcpyDtoH:
		return "memcpy-dtoh"
	case ReqLaunch:
		return "launch"
	case ReqClose:
		return "close"
	case ReqManagedAlloc:
		return "managed-alloc"
	case ReqManagedFree:
		return "managed-free"
	default:
		return fmt.Sprintf("ReqType(%d)", uint32(r))
	}
}

// Response status codes (distinct from device statuses: these describe
// the protocol outcome).
type RespStatus uint32

const (
	RespOK RespStatus = iota
	RespError
	RespAuthFailed
	RespBadRequest
)

// Protocol errors.
var (
	ErrProtocol     = errors.New("hix: malformed protocol message")
	ErrAuth         = errors.New("hix: message authentication failed")
	ErrSessionState = errors.New("hix: invalid session state")
)

// envelopeMagic marks request/response envelopes on the queue.
const envelopeMagic = 0x48495845 // "HIXE"

// envelope is the plaintext framing around an encrypted body. SessionID
// routes the message; SubmitNS carries the simulated submit instant
// (scheduling metadata the OS could observe anyway); the body is OCB
// ciphertext under the session key with a per-direction counter nonce,
// so the adversary can neither read nor undetectably modify, reorder, or
// replay it (§5.5).
type Envelope struct {
	SessionID uint32
	SubmitNS  int64
	Body      []byte // ciphertext
}

func (e *Envelope) Encode() []byte {
	buf := make([]byte, 16+len(e.Body))
	le := binary.LittleEndian
	le.PutUint32(buf[0:], envelopeMagic)
	le.PutUint32(buf[4:], e.SessionID)
	le.PutUint64(buf[8:], uint64(e.SubmitNS))
	copy(buf[16:], e.Body)
	return buf
}

func DecodeEnvelope(buf []byte) (Envelope, error) {
	if len(buf) < 16 {
		return Envelope{}, fmt.Errorf("%w: %d bytes", ErrProtocol, len(buf))
	}
	le := binary.LittleEndian
	if le.Uint32(buf[0:]) != envelopeMagic {
		return Envelope{}, fmt.Errorf("%w: bad magic", ErrProtocol)
	}
	return Envelope{
		SessionID: le.Uint32(buf[4:]),
		SubmitNS:  int64(le.Uint64(buf[8:])),
		Body:      buf[16:],
	}, nil
}

// request is the plaintext body of a user-enclave request.
type Request struct {
	Type ReqType
	// MemAlloc: Size. MemFree: Ptr. Launch: Kernel+Params.
	// Memcpy: Ptr (device address), SegOff (shared-segment offset),
	// Len (ciphertext length for HtoD, plaintext length for DtoH).
	Ptr    uint64
	Size   uint64
	SegOff uint64
	Len    uint64
	Kernel string
	Params [gpu.NumKernelParams]uint64
	// Nonce is the OCB nonce for the bulk-data chunk of a memcpy
	// request. It is chosen by the user enclave from its own counter
	// and travels inside the integrity-protected request body, so both
	// endpoints always agree on it and a refused request cannot
	// desynchronize the channel.
	Nonce [gpu.NonceSize]byte
	Flags uint32
}

func (r *Request) Encode() []byte {
	le := binary.LittleEndian
	buf := make([]byte, 4+8*4+gpu.KernelNameSize+8*gpu.NumKernelParams+gpu.NonceSize+4)
	le.PutUint32(buf[0:], uint32(r.Type))
	le.PutUint64(buf[4:], r.Ptr)
	le.PutUint64(buf[12:], r.Size)
	le.PutUint64(buf[20:], r.SegOff)
	le.PutUint64(buf[28:], r.Len)
	copy(buf[36:36+gpu.KernelNameSize], r.Kernel)
	off := 36 + gpu.KernelNameSize
	for i, p := range r.Params {
		le.PutUint64(buf[off+8*i:], p)
	}
	copy(buf[off+8*gpu.NumKernelParams:], r.Nonce[:])
	le.PutUint32(buf[off+8*gpu.NumKernelParams+gpu.NonceSize:], r.Flags)
	return buf
}

func DecodeRequest(buf []byte) (Request, error) {
	want := 4 + 8*4 + gpu.KernelNameSize + 8*gpu.NumKernelParams + gpu.NonceSize + 4
	if len(buf) != want {
		return Request{}, fmt.Errorf("%w: request length %d != %d", ErrProtocol, len(buf), want)
	}
	le := binary.LittleEndian
	var r Request
	r.Type = ReqType(le.Uint32(buf[0:]))
	r.Ptr = le.Uint64(buf[4:])
	r.Size = le.Uint64(buf[12:])
	r.SegOff = le.Uint64(buf[20:])
	r.Len = le.Uint64(buf[28:])
	name := buf[36 : 36+gpu.KernelNameSize]
	for i, c := range name {
		if c == 0 {
			name = name[:i]
			break
		}
	}
	r.Kernel = string(name)
	off := 36 + gpu.KernelNameSize
	for i := range r.Params {
		r.Params[i] = le.Uint64(buf[off+8*i:])
	}
	copy(r.Nonce[:], buf[off+8*gpu.NumKernelParams:])
	r.Flags = le.Uint32(buf[off+8*gpu.NumKernelParams+gpu.NonceSize:])
	return r, nil
}

// response is the plaintext body of a GPU-enclave response.
type Response struct {
	Status     RespStatus
	CompleteNS int64
	Value      uint64 // e.g. the allocated device pointer
}

func (r *Response) Encode() []byte {
	buf := make([]byte, 20)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], uint32(r.Status))
	le.PutUint64(buf[4:], uint64(r.CompleteNS))
	le.PutUint64(buf[12:], r.Value)
	return buf
}

func DecodeResponse(buf []byte) (Response, error) {
	if len(buf) != 20 {
		return Response{}, fmt.Errorf("%w: response length %d", ErrProtocol, len(buf))
	}
	le := binary.LittleEndian
	return Response{
		Status:     RespStatus(le.Uint32(buf[0:])),
		CompleteNS: int64(le.Uint64(buf[4:])),
		Value:      le.Uint64(buf[12:]),
	}, nil
}

// Nonce channel layout: each session partitions its nonce space into
// four directed channels so no (key, nonce) pair ever repeats.
const (
	NonceUserMeta uint32 = iota + 1 // user -> GPU enclave requests
	NonceGEMeta                     // GPU enclave -> user responses
	NonceDataHtoD                   // user -> GPU bulk data
	NonceDataDtoH                   // GPU -> user bulk data
	NonceManaged                    // GPU-enclave eviction writeback (demand paging)
)

func NonceChannel(sid uint32, ch uint32) uint32 { return sid<<3 | ch }

// HelloRequest opens a session: the user enclave's local-attestation
// report (its ReportData binds the DH public share) plus the share
// itself (§4.4.1).
type HelloRequest struct {
	Report   attest.Report
	DHPublic []byte
	SubmitNS int64
	// Partition requests placement on a specific device partition
	// (1-based index; 0 lets the GPU enclave pick the least-loaded
	// partition). Placement-aware front-ends (internal/part) set it so
	// a session lands on the slice its VRAM and QoS demand was packed
	// onto.
	Partition int
}

// HelloResponse carries the GPU enclave's counter-attestation, its
// vendor endorsement (remote-attestation provenance, §5.5), the GPU's DH
// share g^c obtained over trusted MMIO, and the mixed element g^bc the
// user needs to finish the ring. It also names the OS transport
// resources for the session.
type HelloResponse struct {
	SessionID   uint32
	Report      attest.Report
	Endorsement attest.Endorsement
	GPUPublic   []byte // g^c
	MixedBC     []byte // g^bc
	ReqQueue    int
	RespQueue   int
	SegmentID   int
	SegmentSize uint64
	CompleteNS  int64
	// Partition is the 0-based index of the device partition the
	// session was placed on.
	Partition int
}

// HelloFinish completes key agreement: the user's mixed element g^ca
// (which the GPU enclave exponentiates to reach g^abc) and a key
// confirmation: "confirm" sealed under the derived session key.
type HelloFinish struct {
	SessionID uint32
	MixedCA   []byte
	Confirm   []byte
	SubmitNS  int64
}

// ResumeRequest re-opens a previously established session from
// resumption state (a server-validated ticket): the original session
// ID (nonce channels derive from it, so restoring it keeps the OCB
// nonce streams byte-identical to the original session), the session
// key itself, and a key confirmation sealed under it. No attestation
// report and no DH shares: the trust decision was made when the
// ticket was issued, and the fast path's whole point is zero
// public-key work.
type ResumeRequest struct {
	SessionID uint32
	Key       [attest.SessionKeySize]byte
	Confirm   []byte
	SubmitNS  int64
	// Partition is the 1-based placement pin, as in HelloRequest
	// (0 lets the enclave pick).
	Partition int
}

// ResumeResponse names the fresh OS transport resources for the
// resumed session. There is no counter-report and no endorsement —
// nothing asymmetric happened.
type ResumeResponse struct {
	SessionID   uint32
	ReqQueue    int
	RespQueue   int
	SegmentID   int
	SegmentSize uint64
	CompleteNS  int64
	// Partition is the 0-based index the session landed on.
	Partition int
}

// ManagedBase is the virtual device-address space of managed (demand-
// paged) allocations; the GPU enclave translates these on use.
const ManagedBase = managedBase

// FlagDoubleCopy marks a memcpy request as using the naive double-copy
// design of §4.4.2 (decrypt + re-encrypt inside the GPU enclave plus an
// extra copy) instead of the single-copy path. Used only by the ablation
// benchmark; bit chosen clear of the device FlagSynthetic bit.
const FlagDoubleCopy = 1 << 8

// KeyConfirmation is the plaintext sealed in HelloFinish.
var KeyConfirmation = []byte("hix-key-confirmation-v1")

// ReportDataFor binds DH material into an attestation report.
func ReportDataFor(parts ...[]byte) []byte {
	m := attest.Measure(parts...)
	return m[:]
}
