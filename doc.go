// Package repro is a from-scratch Go reproduction of "Heterogeneous
// Isolated Execution for Commodity GPUs" (HIX), ASPLOS 2019.
//
// The public API lives in repro/hix; the benchmark harness that
// regenerates every table and figure of the paper's evaluation lives in
// the root-level benchmarks (go test -bench .) and the cmd/hixbench
// tool; the executable attack-surface analysis is cmd/hixattack.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for
// paper-versus-measured results.
package repro
