GO ?= go

.PHONY: all build test vet race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrent paths: the OCB package (shared AEAD across
# goroutines, BufPool), the hixrt windowed transfer machinery, and the
# multi-tenant serving engine (concurrent Serve workers + lockstep
# clients, including the determinism tests that pin the simulated
# schedule across worker counts).
race:
	$(GO) test -race -count=1 ./internal/ocb/
	$(GO) test -race -count=1 ./internal/hixrt/ -run 'Windowed|Undersized|Concurrent|Tamper|Replay|MultiChunk|Isolation|Determinism'

# Benchmark run: the wide-datapath microbenches (BENCH_pr1.json via
# scripts/check.sh --bench), the TLB microbench, and the serving-engine
# experiments (datapath wall clock + multi-tenant sweep) dumped to
# BENCH_pr2.json.
bench:
	$(GO) test -run '^$$' -bench 'MemcpyHtoD|MemcpyDtoH' -benchtime 3x -benchmem .
	$(GO) test -run '^$$' -bench 'OCBSealInto|OCBOpenInto' -benchmem ./internal/ocb/
	$(GO) test -run '^$$' -bench 'Translate' -benchmem ./internal/mmu/
	$(GO) run ./cmd/hixbench -exp datapath,multitenant -json BENCH_pr2.json

check:
	./scripts/check.sh
