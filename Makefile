GO ?= go

.PHONY: all build test vet race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrent paths introduced by the wide data path:
# the OCB package (shared AEAD across goroutines, BufPool) and the
# hixrt windowed transfer machinery. The full suite is not run under
# -race because TestMultiUserDeterminism has a pre-existing flake
# (gap-filling timeline placement is sensitive to goroutine arrival
# order); see EXPERIMENTS.md.
race:
	$(GO) test -race -count=1 ./internal/ocb/
	$(GO) test -race -count=1 ./internal/hixrt/ -run 'Windowed|Undersized|Concurrent|Tamper|Replay|MultiChunk|Isolation'

# Short benchmark run; scripts/check.sh turns the same run into
# BENCH_pr1.json.
bench:
	$(GO) test -run '^$$' -bench 'MemcpyHtoD|MemcpyDtoH' -benchtime 3x -benchmem .
	$(GO) test -run '^$$' -bench 'OCBSealInto|OCBOpenInto' -benchmem ./internal/ocb/

check:
	./scripts/check.sh
