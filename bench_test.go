// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§5.3–§5.4), plus the design-choice ablations.
//
// Reported metrics are *simulated* platform time (the deterministic cost
// model of internal/sim), exposed as custom benchmark metrics:
//
//	sim-gdev-ms   execution time on the unprotected Gdev baseline
//	sim-hix-ms    execution time under HIX protection
//	hix-overhead  relative overhead (HIX/Gdev - 1)
//
// Wall-clock ns/op only measures how fast the simulator itself runs and
// is not meaningful for the reproduction.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func reportPair(b *testing.B, gdev, hix sim.Duration) {
	b.Helper()
	b.ReportMetric(float64(gdev)/1e6, "sim-gdev-ms")
	b.ReportMetric(float64(hix)/1e6, "sim-hix-ms")
	if gdev > 0 {
		b.ReportMetric(float64(hix-gdev)/float64(gdev), "hix-overhead")
	}
}

// BenchmarkTable4MatrixSizes regenerates Table 4 (matrix data volumes).
func BenchmarkTable4MatrixSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table4()
		if len(rows) != 4 || rows[3].Total != 1452<<20 {
			b.Fatalf("table 4 mismatch: %+v", rows)
		}
	}
}

// BenchmarkFig6Matrix regenerates Figure 6: matrix add and multiply under
// Gdev and HIX at each Table 4 size.
func BenchmarkFig6Matrix(b *testing.B) {
	for _, mul := range []bool{false, true} {
		op := "Add"
		if mul {
			op = "Mul"
		}
		for _, n := range workloads.PaperMatrixSizes {
			n, mul := n, mul
			b.Run(fmt.Sprintf("%s/%d", op, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m, err := bench.Compare(func() workloads.Workload {
						return workloads.NewMatrixSynthetic(n, mul)
					}, "matrix")
					if err != nil {
						b.Fatal(err)
					}
					reportPair(b, m.Gdev, m.HIX)
				}
			})
		}
	}
}

// BenchmarkTable5Rodinia regenerates Table 5 (Rodinia transfer volumes).
func BenchmarkTable5Rodinia(b *testing.B) {
	for i := 0; i < b.N; i++ {
		specs := bench.Table5()
		if len(specs) != 9 {
			b.Fatalf("table 5 has %d apps", len(specs))
		}
	}
}

// BenchmarkFig7Rodinia regenerates Figure 7: single-user Rodinia under
// Gdev and HIX.
func BenchmarkFig7Rodinia(b *testing.B) {
	factories := map[string]func() workloads.Workload{
		"BP":   func() workloads.Workload { return workloads.PaperBP() },
		"BFS":  func() workloads.Workload { return workloads.PaperBFS() },
		"GS":   func() workloads.Workload { return workloads.PaperGS() },
		"HS":   func() workloads.Workload { return workloads.PaperHS() },
		"LUD":  func() workloads.Workload { return workloads.PaperLUD() },
		"NW":   func() workloads.Workload { return workloads.PaperNW() },
		"NN":   func() workloads.Workload { return workloads.PaperNN() },
		"PF":   func() workloads.Workload { return workloads.PaperPF() },
		"SRAD": func() workloads.Workload { return workloads.PaperSRAD() },
	}
	for name, f := range factories {
		name, f := name, f
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := bench.Compare(f, name)
				if err != nil {
					b.Fatal(err)
				}
				reportPair(b, m.Gdev, m.HIX)
			}
		})
	}
}

func benchMultiUser(b *testing.B, users int) {
	for i := 0; i < b.N; i++ {
		ms, err := bench.MultiUser(users)
		if err != nil {
			b.Fatal(err)
		}
		var gdevN, hixN sim.Duration
		for _, m := range ms {
			gdevN += m.GdevN
			hixN += m.HIXN
		}
		reportPair(b, gdevN/sim.Duration(len(ms)), hixN/sim.Duration(len(ms)))
		b.ReportMetric(bench.AverageMultiOverhead(ms), "avg-hix-over-gdev")
	}
}

// BenchmarkFig8TwoUsers regenerates Figure 8: two concurrent users per
// Rodinia app, Gdev vs HIX.
func BenchmarkFig8TwoUsers(b *testing.B) { benchMultiUser(b, 2) }

// BenchmarkFig9FourUsers regenerates Figure 9: four concurrent users.
func BenchmarkFig9FourUsers(b *testing.B) { benchMultiUser(b, 4) }

// BenchmarkAblationSingleCopy quantifies the §4.4.2 single-copy design
// against the naive double-copy alternative.
func BenchmarkAblationSingleCopy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := bench.AblationSingleCopy()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(a.Chosen)/1e6, "sim-single-ms")
		b.ReportMetric(float64(a.Naive)/1e6, "sim-double-ms")
		b.ReportMetric(a.Benefit(), "double-copy-penalty")
	}
}

// BenchmarkAblationPipelining quantifies the §5.2 crypto/transfer
// pipeline.
func BenchmarkAblationPipelining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := bench.AblationPipelining()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(a.Chosen)/1e6, "sim-pipelined-ms")
		b.ReportMetric(float64(a.Naive)/1e6, "sim-serial-ms")
		b.ReportMetric(a.Benefit(), "no-pipeline-penalty")
	}
}

// BenchmarkAblationMMIOvsDMA sweeps the two copy mechanisms (§4.4.2).
func BenchmarkAblationMMIOvsDMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationMMIOvsDMA()
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.DMA)/1e3, "sim-dma-4MiB-us")
		b.ReportMetric(float64(last.MMIO)/1e3, "sim-mmio-4MiB-us")
	}
}

// BenchmarkExtensionVolta measures the §5.4 prediction: multi-user HIX
// on a Volta-style GPU with concurrent multi-context execution.
func BenchmarkExtensionVolta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pre, err := bench.MultiUser(2)
		if err != nil {
			b.Fatal(err)
		}
		post, err := bench.MultiUserVolta(2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bench.AverageMultiOverhead(pre), "pre-volta-overhead")
		b.ReportMetric(bench.AverageMultiOverhead(post), "volta-overhead")
	}
}

// BenchmarkExtensionPaging measures the secure demand-paging extension
// (§5.6): pass time within VRAM vs 1.7x oversubscribed.
func BenchmarkExtensionPaging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.PagingSweep()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pts[0].PassTime)/1e6, "sim-resident-ms")
		b.ReportMetric(float64(pts[len(pts)-1].PassTime)/1e6, "sim-paged-ms")
	}
}

// BenchmarkAblationCtxSwitch sweeps the GPU context-switch cost under
// two-user contention (§4.5).
func BenchmarkAblationCtxSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.AblationCtxSwitch()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].HIXOverGdev, "overhead-at-0us")
		b.ReportMetric(pts[len(pts)-1].HIXOverGdev, "overhead-at-220us")
	}
}
